(* Tests for the cr_graph library: graph structure, heap, union-find,
   Dijkstra (cross-checked against Bellman-Ford), balls, APSP,
   components, generators and I/O. *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Heap = Cr_graph.Heap
module Unionfind = Cr_graph.Unionfind
module Dijkstra = Cr_graph.Dijkstra
module Ball = Cr_graph.Ball
module Apsp = Cr_graph.Apsp
module Component = Cr_graph.Component
module Generators = Cr_graph.Generators
module Gio = Cr_graph.Gio

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* A small fixed graph used in several tests:
     0 --1.0-- 1 --1.0-- 2
     |                   |
     +-------5.0---------+        plus pendant 3 hanging off 2 (2.0) *)
let fixture () =
  Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 5.0); (2, 3, 2.0) ]

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_basic () =
  let g = fixture () in
  checki "n" 4 (Graph.n g);
  checki "m" 4 (Graph.m g);
  checki "deg 0" 2 (Graph.degree g 0);
  checki "deg 2" 3 (Graph.degree g 2);
  checki "max degree" 3 (Graph.max_degree g)

let test_graph_edges () =
  let g = fixture () in
  checkb "has 0-1" true (Graph.has_edge g 0 1);
  checkb "has 1-0" true (Graph.has_edge g 1 0);
  checkb "no 0-3" false (Graph.has_edge g 0 3);
  checkf "w(0,2)" 5.0 (Option.get (Graph.edge_weight g 0 2));
  checkb "missing weight" true (Graph.edge_weight g 1 3 = None);
  checki "edge list" 4 (List.length (Graph.edges g))

let test_graph_ports () =
  let g = fixture () in
  (* adjacency sorted by neighbor: node 2 has neighbors 0,1,3 *)
  checki "port 2->0" 0 (Option.get (Graph.port g 2 0));
  checki "port 2->1" 1 (Option.get (Graph.port g 2 1));
  checki "port 2->3" 2 (Option.get (Graph.port g 2 3));
  let v, w = Graph.via_port g 2 2 in
  checki "via port node" 3 v;
  checkf "via port weight" 2.0 w;
  checkb "bad port raises" true
    (try
       ignore (Graph.via_port g 2 9);
       false
     with Invalid_argument _ -> true)

let test_graph_parallel_edges_merged () =
  let g = Graph.create ~n:2 [ (0, 1, 3.0); (1, 0, 1.0); (0, 1, 2.0) ] in
  checki "merged" 1 (Graph.m g);
  checkf "min weight kept" 1.0 (Option.get (Graph.edge_weight g 0 1))

let test_graph_invalid_inputs () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  checkb "self loop" true (raises (fun () -> ignore (Graph.create ~n:2 [ (0, 0, 1.0) ])));
  checkb "zero weight" true (raises (fun () -> ignore (Graph.create ~n:2 [ (0, 1, 0.0) ])));
  checkb "negative weight" true (raises (fun () -> ignore (Graph.create ~n:2 [ (0, 1, -1.0) ])));
  checkb "out of range" true (raises (fun () -> ignore (Graph.create ~n:2 [ (0, 5, 1.0) ])))

let test_graph_names () =
  let g = Graph.create ~names:[| 100; 200; 300 |] ~n:3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  checki "name of 1" 200 (Graph.name_of g 1);
  checki "index of 300" 2 (Option.get (Graph.index_of_name g 300));
  checkb "unknown name" true (Graph.index_of_name g 999 = None)

let test_graph_relabel () =
  let rng = Rng.create 7 in
  let g = fixture () in
  let g' = Graph.relabel rng g in
  let names = Array.init 4 (Graph.name_of g') in
  let tbl = Hashtbl.create 4 in
  Array.iter (fun nm -> Hashtbl.replace tbl nm ()) names;
  checki "names distinct" 4 (Hashtbl.length tbl);
  checki "topology unchanged" 4 (Graph.m g')

let test_graph_normalize () =
  let g = Graph.create ~n:3 [ (0, 1, 2.0); (1, 2, 6.0) ] in
  let g' = Graph.normalize g in
  checkf "min is 1" 1.0 (Graph.min_weight g');
  checkf "ratio preserved" 3.0 (Graph.max_weight g')

let test_graph_reweight_once_per_edge () =
  let g = fixture () in
  let calls = ref 0 in
  let g' = Graph.reweight g (fun _ _ w -> incr calls; w *. 2.0) in
  checki "called once per edge" (Graph.m g) !calls;
  checkf "weight doubled" 2.0 (Option.get (Graph.edge_weight g' 0 1));
  (* symmetric view *)
  checkf "symmetric" 2.0 (Option.get (Graph.edge_weight g' 1 0))

let test_graph_hash_structural () =
  let g1 = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  let g2 = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  checki "equal structure, equal hash" (Graph.hash g1) (Graph.hash g2);
  (* the regression this pins: the hash used to fold only (n, m), so
     every same-size graph collided — weight and topology changes were
     invisible to anything keyed on the hash *)
  let g3 = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 5.0) ] in
  checkb "same (n, m), changed weight: hash differs" true (Graph.hash g1 <> Graph.hash g3);
  let g4 = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (1, 3, 1.0) ] in
  checkb "same (n, m), changed topology: hash differs" true (Graph.hash g1 <> Graph.hash g4);
  (* mutating one weight through reweight changes the hash too *)
  let g5 = Graph.reweight g1 (fun u v w -> if u = 0 && v = 1 then w +. 1.0 else w) in
  checkb "reweight changes the hash" true (Graph.hash g1 <> Graph.hash g5);
  checkb "hash is non-negative" true (Graph.hash g1 >= 0)

let test_graph_induced () =
  let g = fixture () in
  let sub, map = Graph.induced g [| 0; 1; 2 |] in
  checki "sub n" 3 (Graph.n sub);
  checki "sub m" 3 (Graph.m sub);
  Alcotest.(check (array int)) "map" [| 0; 1; 2 |] map;
  let sub2, _ = Graph.induced g [| 1; 3 |] in
  checki "disconnected induced" 0 (Graph.m sub2)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create 10 in
  List.iter (fun (x, p) -> Heap.insert h x p) [ (3, 5.0); (1, 2.0); (7, 8.0); (4, 1.0) ];
  checki "size" 4 (Heap.size h);
  let x1, p1 = Heap.pop_min h in
  checki "first elt" 4 x1;
  checkf "first prio" 1.0 p1;
  let x2, _ = Heap.pop_min h in
  checki "second" 1 x2;
  let x3, _ = Heap.pop_min h in
  checki "third" 3 x3;
  let x4, _ = Heap.pop_min h in
  checki "fourth" 7 x4;
  checkb "empty" true (Heap.is_empty h)

let test_heap_decrease () =
  let h = Heap.create 5 in
  Heap.insert h 0 10.0;
  Heap.insert h 1 20.0;
  Heap.decrease h 1 5.0;
  let x, p = Heap.pop_min h in
  checki "decreased wins" 1 x;
  checkf "new prio" 5.0 p

let test_heap_insert_or_decrease () =
  let h = Heap.create 5 in
  Heap.insert_or_decrease h 2 9.0;
  Heap.insert_or_decrease h 2 4.0;
  Heap.insert_or_decrease h 2 6.0 (* ignored: larger *);
  checkf "prio" 4.0 (Heap.priority h 2)

let test_heap_errors () =
  let h = Heap.create 3 in
  checkb "pop empty" true (try ignore (Heap.pop_min h); false with Not_found -> true);
  Heap.insert h 1 1.0;
  checkb "double insert" true
    (try Heap.insert h 1 2.0; false with Invalid_argument _ -> true);
  checkb "decrease absent" true
    (try Heap.decrease h 2 0.5; false with Invalid_argument _ -> true);
  checkb "increase rejected" true
    (try Heap.decrease h 1 5.0; false with Invalid_argument _ -> true)

let test_heap_random_sorts () =
  let rng = Rng.create 17 in
  let n = 200 in
  let h = Heap.create n in
  let prios = Array.init n (fun _ -> Rng.float rng 100.0) in
  Array.iteri (fun i p -> Heap.insert h i p) prios;
  let last = ref neg_infinity in
  for _ = 1 to n do
    let _, p = Heap.pop_min h in
    checkb "nondecreasing" true (p >= !last);
    last := p
  done

(* ------------------------------------------------------------------ *)
(* Unionfind *)

let test_unionfind () =
  let uf = Unionfind.create 6 in
  checki "initial count" 6 (Unionfind.count uf);
  checkb "union new" true (Unionfind.union uf 0 1);
  checkb "union again" false (Unionfind.union uf 1 0);
  ignore (Unionfind.union uf 2 3);
  ignore (Unionfind.union uf 0 3);
  checkb "transitive" true (Unionfind.same uf 1 2);
  checkb "separate" false (Unionfind.same uf 1 5);
  checki "count" 3 (Unionfind.count uf)

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_dijkstra_fixture () =
  let g = fixture () in
  let res = Dijkstra.run g 0 in
  checkf "d(0,0)" 0.0 res.Dijkstra.dist.(0);
  checkf "d(0,1)" 1.0 res.Dijkstra.dist.(1);
  checkf "d(0,2)" 2.0 res.Dijkstra.dist.(2) (* via 1, not the 5.0 edge *);
  checkf "d(0,3)" 4.0 res.Dijkstra.dist.(3);
  Alcotest.(check (list int)) "path 0->3" [ 0; 1; 2; 3 ] (Dijkstra.path_to res 3)

let test_dijkstra_parent_ports () =
  let g = fixture () in
  let res = Dijkstra.run g 0 in
  (* parent of 3 is 2; port at 3 towards 2 is 0 (only neighbor) *)
  checki "parent of 3" 2 res.Dijkstra.parent.(3);
  let v, _ = Graph.via_port g 3 res.Dijkstra.parent_port.(3) in
  checki "port leads to parent" 2 v

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:3 [ (0, 1, 1.0) ] in
  let res = Dijkstra.run g 0 in
  checkb "unreachable inf" true (res.Dijkstra.dist.(2) = infinity);
  checkb "path raises" true (try ignore (Dijkstra.path_to res 2); false with Not_found -> true)

let test_dijkstra_bounded () =
  let g = fixture () in
  let res = Dijkstra.run_bounded g 0 1.5 in
  checkf "near node kept" 1.0 res.Dijkstra.dist.(1);
  checkb "far node dropped" true (res.Dijkstra.dist.(3) = infinity)

let test_dijkstra_restricted () =
  let g = fixture () in
  (* forbid node 1: now 0->2 must use the 5.0 edge *)
  let res = Dijkstra.run_restricted g ~allowed:(fun v -> v <> 1) 0 in
  checkf "detour" 5.0 res.Dijkstra.dist.(2);
  (* max_edge below 5 disconnects *)
  let res2 = Dijkstra.run_restricted g ~allowed:(fun v -> v <> 1) ~max_edge:4.0 0 in
  checkb "edge filter" true (res2.Dijkstra.dist.(2) = infinity)

let test_dijkstra_vs_bellman_ford () =
  let rng = Rng.create 23 in
  for trial = 0 to 9 do
    let g = Generators.erdos_renyi rng ~n:60 ~avg_degree:4.0 in
    let s = trial mod Graph.n g in
    let d1 = (Dijkstra.run g s).Dijkstra.dist in
    let d2 = Dijkstra.bellman_ford g s in
    Array.iteri
      (fun v dv ->
        checkb (Printf.sprintf "trial %d node %d" trial v) true (Float.abs (dv -. d2.(v)) < 1e-6))
      d1
  done

let test_dijkstra_eccentricity () =
  let g = fixture () in
  checkf "ecc" 4.0 (Dijkstra.eccentricity (Dijkstra.run g 0))

(* ------------------------------------------------------------------ *)
(* Ball *)

let test_ball_basic () =
  let g = fixture () in
  let b = Ball.of_dijkstra (Dijkstra.run g 0) in
  checki "source" 0 (Ball.source b);
  checki "reachable" 4 (Ball.reachable b);
  checki "|B(0,0)|" 1 (Ball.ball_size b 0.0);
  checki "|B(0,1)|" 2 (Ball.ball_size b 1.0);
  checki "|B(0,2)|" 3 (Ball.ball_size b 2.0);
  checki "|B(0,100)|" 4 (Ball.ball_size b 100.0);
  Alcotest.(check (array int)) "ball members" [| 0; 1; 2 |] (Ball.ball b 2.0)

let test_ball_kth_and_closest () =
  let g = fixture () in
  let b = Ball.of_dijkstra (Dijkstra.run g 0) in
  checkf "1st dist" 0.0 (Ball.kth_distance b 1);
  checkf "3rd dist" 2.0 (Ball.kth_distance b 3);
  Alcotest.(check (array int)) "closest 2" [| 0; 1 |] (Ball.closest b 2);
  Alcotest.(check (array int)) "closest overflow" [| 0; 1; 2; 3 |] (Ball.closest b 99)

let test_ball_closest_in () =
  let g = fixture () in
  let b = Ball.of_dijkstra (Dijkstra.run g 0) in
  Alcotest.(check (array int)) "even nodes" [| 0; 2 |] (Ball.closest_in b 2 (fun v -> v mod 2 = 0));
  Alcotest.(check (array int)) "limited" [| 1 |] (Ball.closest_in b 1 (fun v -> v mod 2 = 1))

let test_ball_excludes_unreachable () =
  let g = Graph.create ~n:3 [ (0, 1, 1.0) ] in
  let b = Ball.of_dijkstra (Dijkstra.run g 0) in
  checki "reachable only" 2 (Ball.reachable b);
  checki "infinite ball excludes disconnected" 2 (Ball.ball_size b infinity)

let test_ball_tie_break () =
  (* nodes 1 and 2 both at distance 1: index order breaks the tie *)
  let g = Graph.create ~n:3 [ (0, 1, 1.0); (0, 2, 1.0) ] in
  let b = Ball.of_dijkstra (Dijkstra.run g 0) in
  Alcotest.(check (array int)) "lexicographic" [| 0; 1; 2 |] (Ball.closest b 3)

(* ------------------------------------------------------------------ *)
(* Apsp *)

let test_apsp_matches_dijkstra () =
  let rng = Rng.create 29 in
  let g = Generators.erdos_renyi rng ~n:40 ~avg_degree:3.0 in
  let apsp = Apsp.compute g in
  for u = 0 to Graph.n g - 1 do
    let d = (Dijkstra.run g u).Dijkstra.dist in
    for v = 0 to Graph.n g - 1 do
      checkb "match" true (Float.abs (Apsp.distance apsp u v -. d.(v)) < 1e-9)
    done
  done

let test_apsp_symmetry_and_triangle () =
  let rng = Rng.create 31 in
  let g = Generators.random_geometric rng ~n:50 ~radius:0.3 in
  let apsp = Apsp.compute g in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      checkb "symmetric" true
        (Float.abs (Apsp.distance apsp u v -. Apsp.distance apsp v u) < 1e-6)
    done
  done;
  (* triangle inequality on a sample *)
  for u = 0 to min 9 (n - 1) do
    for v = 0 to min 9 (n - 1) do
      for w = 0 to min 9 (n - 1) do
        checkb "triangle" true
          (Apsp.distance apsp u v <= Apsp.distance apsp u w +. Apsp.distance apsp w v +. 1e-6)
      done
    done
  done

let test_apsp_metrics () =
  let g = fixture () in
  let apsp = Apsp.compute g in
  checkb "connected" true (Apsp.connected apsp);
  checkf "diameter" 4.0 (Apsp.diameter apsp);
  checkf "aspect" 4.0 (Apsp.aspect_ratio apsp)

let test_apsp_disconnected () =
  let g = Graph.create ~n:3 [ (0, 1, 1.0) ] in
  let apsp = Apsp.compute g in
  checkb "not connected" false (Apsp.connected apsp);
  checkb "inf distance" true (Apsp.distance apsp 0 2 = infinity)

let test_apsp_parallel_matches_sequential () =
  let rng = Rng.create 101 in
  let g = Generators.erdos_renyi rng ~n:150 ~avg_degree:4.0 in
  let seq = Apsp.compute g in
  let par = Apsp.compute_parallel ~domains:4 g in
  for u = 0 to 149 do
    for v = 0 to 149 do
      checkb "identical distances" true
        (Float.abs (Apsp.distance seq u v -. Apsp.distance par u v) < 1e-12)
    done
  done

let test_apsp_parallel_single_domain_fallback () =
  let rng = Rng.create 103 in
  let g = Generators.grid ~rows:5 ~cols:5 in
  ignore rng;
  let par = Apsp.compute_parallel ~domains:1 g in
  checkb "connected" true (Apsp.connected par)

(* ------------------------------------------------------------------ *)
(* Component *)

let test_components () =
  let g = Graph.create ~n:5 [ (0, 1, 1.0); (3, 4, 1.0) ] in
  let comp = Component.components g in
  checki "count" 3 (Component.count g);
  checkb "same comp" true (comp.(0) = comp.(1));
  checkb "diff comp" true (comp.(0) <> comp.(3));
  checkb "connected check" false (Component.is_connected g);
  Alcotest.(check (array int)) "largest" [| 0; 1 |] (Component.largest g)

let test_components_connected () =
  let g = fixture () in
  checkb "connected" true (Component.is_connected g);
  checki "one" 1 (Component.count g)

(* ------------------------------------------------------------------ *)
(* Generators *)

let connected_positive name g =
  checkb (name ^ " connected") true (Component.is_connected g);
  checkb (name ^ " positive weights") true (Graph.min_weight g > 0.0)

let test_gen_erdos_renyi () =
  let rng = Rng.create 41 in
  let g = Generators.erdos_renyi rng ~n:100 ~avg_degree:5.0 in
  checki "n" 100 (Graph.n g);
  connected_positive "er" g;
  (* average degree in the right ballpark *)
  let avg = 2.0 *. float_of_int (Graph.m g) /. 100.0 in
  checkb "avg degree sane" true (avg > 2.0 && avg < 10.0)

let test_gen_geometric () =
  let rng = Rng.create 43 in
  let g = Generators.random_geometric rng ~n:80 ~radius:0.25 in
  checki "n" 80 (Graph.n g);
  connected_positive "geo" g;
  checkf "normalized" 1.0 (Graph.min_weight g)

let test_gen_grid_torus () =
  let g = Generators.grid ~rows:4 ~cols:5 in
  checki "grid n" 20 (Graph.n g);
  checki "grid m" 31 (Graph.m g) (* 4*4 + 3*5 = 31 *);
  connected_positive "grid" g;
  let t = Generators.torus ~rows:4 ~cols:5 in
  checki "torus m" 40 (Graph.m t) (* 2*rows*cols *);
  connected_positive "torus" t

let test_gen_ring_chords () =
  let rng = Rng.create 47 in
  let g = Generators.ring_with_chords rng ~n:50 ~chords:10 in
  checki "n" 50 (Graph.n g);
  connected_positive "ring" g;
  checkb "chords added" true (Graph.m g > 50)

let test_gen_tree () =
  let rng = Rng.create 53 in
  let g = Generators.random_tree rng ~n:64 in
  checki "tree edges" 63 (Graph.m g);
  connected_positive "tree" g

let test_gen_preferential () =
  let rng = Rng.create 59 in
  let g = Generators.preferential_attachment rng ~n:100 ~edges_per_node:2 in
  checki "n" 100 (Graph.n g);
  connected_positive "pa" g

let test_gen_power_law () =
  let g = Generators.power_law (Rng.create 71) ~n:200 ~exponent:2.5 in
  checki "n" 200 (Graph.n g);
  connected_positive "power-law" g;
  (* the configuration model with gamma ~ 2.5 stays sparse: m = O(n) *)
  checkb "sparse" true (Graph.m g < 4 * Graph.n g);
  (* deterministic per seed, and the seed matters *)
  let g2 = Generators.power_law (Rng.create 71) ~n:200 ~exponent:2.5 in
  checkb "deterministic" true (Graph.edges g = Graph.edges g2);
  let g3 = Generators.power_law (Rng.create 72) ~n:200 ~exponent:2.5 in
  checkb "seed matters" true (Graph.edges g <> Graph.edges g3);
  Alcotest.check_raises "n too small" (Invalid_argument "power_law: n < 4") (fun () ->
      ignore (Generators.power_law (Rng.create 1) ~n:3 ~exponent:2.5));
  Alcotest.check_raises "exponent too small" (Invalid_argument "power_law: exponent <= 1")
    (fun () -> ignore (Generators.power_law (Rng.create 1) ~n:32 ~exponent:1.0))

let test_gen_power_law_exponent_shapes_density () =
  (* a steeper exponent pushes the degree distribution toward 1, so the
     realized edge count falls (deterministic: fixed seed) *)
  let flat = Generators.power_law (Rng.create 73) ~n:400 ~exponent:2.1 in
  let steep = Generators.power_law (Rng.create 73) ~n:400 ~exponent:3.5 in
  checkb "steeper exponent, fewer edges" true (Graph.m flat > Graph.m steep);
  (* the steep limit degenerates toward a near-1-regular pairing: m ~ n *)
  checkb "steep limit near m=n" true (Graph.m steep <= 440 && Graph.m steep >= 360)

let test_gen_isp () =
  let rng = Rng.create 61 in
  let g = Generators.two_tier_isp rng ~core:8 ~access_per_core:10 in
  checki "n" 88 (Graph.n g);
  connected_positive "isp" g

let test_gen_stretch_weights () =
  let rng = Rng.create 67 in
  let g = Generators.grid ~rows:6 ~cols:6 in
  let g' = Generators.stretch_weights rng g ~target_aspect:65536.0 in
  checki "same topology" (Graph.m g) (Graph.m g');
  connected_positive "stretched" g';
  let spread = Graph.max_weight g' /. Graph.min_weight g' in
  checkb "weight spread grew" true (spread > 100.0)

let test_gen_exponential_line () =
  let g = Generators.exponential_line ~n:40 ~base:2.0 in
  checki "edges" 39 (Graph.m g);
  connected_positive "expline" g;
  (* weight of edge i is 2^i *)
  checkf "edge 0" 1.0 (Option.get (Graph.edge_weight g 0 1));
  checkf "edge 10" 1024.0 (Option.get (Graph.edge_weight g 10 11));
  (* aspect grows with base *)
  let small = Generators.exponential_line ~n:40 ~base:1.2 in
  checkb "spread ordered" true
    (Graph.max_weight g /. Graph.min_weight g > Graph.max_weight small /. Graph.min_weight small);
  checkb "bad base rejected" true
    (try ignore (Generators.exponential_line ~n:10 ~base:1.0); false with Invalid_argument _ -> true)

let test_gen_dumbbell () =
  let g = Generators.dumbbell ~n_side:5 ~bridge_weight:1000.0 in
  checki "n" 10 (Graph.n g);
  connected_positive "dumbbell" g;
  let apsp = Apsp.compute g in
  checkb "huge aspect" true (Apsp.aspect_ratio apsp >= 1000.0)

(* ------------------------------------------------------------------ *)
(* Gio *)

let test_gio_roundtrip () =
  let rng = Rng.create 71 in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n:30 ~avg_degree:4.0) in
  let g' = Gio.of_string (Gio.to_string g) in
  checki "n" (Graph.n g) (Graph.n g');
  checki "m" (Graph.m g) (Graph.m g');
  Graph.iter_edges g (fun u v w ->
      checkf "weight preserved" w (Option.get (Graph.edge_weight g' u v)));
  for u = 0 to Graph.n g - 1 do
    checki "name preserved" (Graph.name_of g u) (Graph.name_of g' u)
  done

let test_gio_file_roundtrip () =
  let g = fixture () in
  let path = Filename.temp_file "crgraph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.save g path;
      let g' = Gio.load path in
      checki "m" (Graph.m g) (Graph.m g'))

let test_gio_bad_input () =
  let raises s = try ignore (Gio.of_string s); false with Gio.Parse_error _ -> true in
  checkb "no header" true (raises "edge 0 1 1.0\n");
  checkb "junk line" true (raises "graph 2 1\nfrobnicate\n")

let test_gio_parse_errors_carry_line_numbers () =
  let line_of s = try ignore (Gio.of_string s); -1 with Gio.Parse_error (l, _) -> l in
  (* malformed integer in the header *)
  checki "bad node count" 1 (line_of "graph two 1\nedge 0 1 1.0\n");
  (* malformed integer in an edge record *)
  checki "bad endpoint" 2 (line_of "graph 3 1\nedge 0 x 1.0\n");
  (* malformed float weight *)
  checki "bad weight" 2 (line_of "graph 3 1\nedge 0 1 heavy\n");
  (* out-of-range node index on a name line: used to crash with a bare
     Index out of bounds *)
  checki "name index out of range" 2 (line_of "graph 2 1\nname 7 42\nedge 0 1 1.0\n");
  checki "negative name index" 2 (line_of "graph 2 1\nname -1 42\nedge 0 1 1.0\n");
  (* out-of-range edge endpoint *)
  checki "edge endpoint out of range" 2 (line_of "graph 2 1\nedge 0 5 1.0\n");
  (* non-positive and non-finite weights *)
  checki "zero weight" 2 (line_of "graph 2 1\nedge 0 1 0.0\n");
  checki "negative weight" 2 (line_of "graph 2 1\nedge 0 1 -3.0\n");
  checki "nan weight" 2 (line_of "graph 2 1\nedge 0 1 nan\n");
  checki "infinite weight" 2 (line_of "graph 2 1\nedge 0 1 inf\n");
  checki "negative infinite weight" 2 (line_of "graph 2 1\nedge 0 1 -inf\n");
  checki "infinite weight after valid lines" 3
    (line_of "graph 3 2\nedge 0 1 1.0\nedge 1 2 infinity\n");
  (* self-loop *)
  checki "self-loop" 2 (line_of "graph 2 1\nedge 1 1 1.0\n");
  (* wrong field counts *)
  checki "short edge record" 2 (line_of "graph 2 1\nedge 0 1\n");
  checki "long name record" 2 (line_of "graph 2 1\nname 0 1 2\nedge 0 1 1.0\n");
  (* duplicate header; line 0 marks global errors *)
  checki "duplicate header" 2 (line_of "graph 2 1\ngraph 2 1\nedge 0 1 1.0\n");
  checki "missing header is global" 0 (line_of "edge 0 1 1.0\n");
  (* blank lines and comments do not shift the count *)
  checki "line numbers skip comments" 4 (line_of "# hi\n\ngraph 3 1\nedge 0 one 1.0\n")

let test_gio_parse_error_message_mentions_reason () =
  (match Gio.of_string "graph 2 1\nedge 0 1 heavy\n" with
  | exception Gio.Parse_error (2, msg) ->
      checkb "mentions token" true
        (let rec contains i =
           i + 5 <= String.length msg && (String.sub msg i 5 = "heavy" || contains (i + 1))
         in
         contains 0)
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error")

let test_gio_comments_and_blanks () =
  let g = Gio.of_string "# comment\n\ngraph 2 1\nedge 0 1 2.5\n" in
  checki "n" 2 (Graph.n g);
  checkf "w" 2.5 (Option.get (Graph.edge_weight g 0 1))

(* ------------------------------------------------------------------ *)
(* Graph mutations *)

let test_mutation_setw_preserves_ports () =
  let g = fixture () in
  let g' = Graph.apply g (Graph.Set_weight (0, 2, 9.0)) in
  checkf "reweighted" 9.0 (Option.get (Graph.edge_weight g' 0 2));
  checkf "input untouched" 5.0 (Option.get (Graph.edge_weight g 0 2));
  for v = 0 to 3 do
    Array.iteri
      (fun p (nb, _) -> checki "port stable" p (Option.get (Graph.port g' v nb)))
      (Graph.neighbors g v)
  done

let test_mutation_link_topology () =
  let g = fixture () in
  let g' = Graph.apply g (Graph.Link_down (0, 2)) in
  checkb "edge gone" false (Graph.has_edge g' 0 2);
  checki "m dropped" 3 (Graph.m g');
  let g'' = Graph.apply g' (Graph.Link_up (0, 3, 2.5)) in
  checkf "edge added" 2.5 (Option.get (Graph.edge_weight g'' 0 3));
  checki "m restored" 4 (Graph.m g'')

let test_mutation_node_down_up () =
  let g = fixture () in
  let g' = Graph.apply g (Graph.Node_down 2) in
  checki "incident edges removed" 1 (Graph.m g') (* only 0-1 survives *);
  checki "degree zero" 0 (Graph.degree g' 2);
  checki "n unchanged" 4 (Graph.n g');
  (* recovery is structurally a no-op: links come back via linkup *)
  let g'' = Graph.apply g' (Graph.Node_up 2) in
  checki "nodeup no-op" (Graph.m g') (Graph.m g'')

let test_mutation_validation () =
  let g = fixture () in
  let raises mu = try ignore (Graph.apply g mu); false with Invalid_argument _ -> true in
  checkb "setw missing edge" true (raises (Graph.Set_weight (0, 3, 1.0)));
  checkb "setw bad weight" true (raises (Graph.Set_weight (0, 1, 0.0)));
  checkb "linkdown missing edge" true (raises (Graph.Link_down (0, 3)));
  checkb "linkup existing edge" true (raises (Graph.Link_up (0, 1, 1.0)));
  checkb "linkup self loop" true (raises (Graph.Link_up (1, 1, 1.0)));
  checkb "node out of range" true (raises (Graph.Node_down 9));
  checkb "negative node" true (raises (Graph.Node_up (-1)))

let test_mutation_structural () =
  checkb "setw weight-only" false (Graph.structural (Graph.Set_weight (0, 1, 2.0)));
  checkb "nodeup no-op" false (Graph.structural (Graph.Node_up 0));
  checkb "linkdown structural" true (Graph.structural (Graph.Link_down (0, 1)));
  checkb "linkup structural" true (Graph.structural (Graph.Link_up (0, 3, 1.0)));
  checkb "nodedown structural" true (Graph.structural (Graph.Node_down 0))

(* mutation-log parsing: the daemon journal format *)

let test_mutation_log_roundtrip () =
  let mus =
    [
      Graph.Set_weight (0, 1, 2.5);
      Graph.Link_down (1, 2);
      Graph.Link_up (0, 3, 1.0 +. (1.0 /. 3.0));
      Graph.Node_down 2;
      Graph.Node_up 2;
    ]
  in
  let mus' = Gio.mutations_of_string (Gio.mutations_to_string mus) in
  checkb "bit-identical list" true (mus = mus')

let test_mutation_log_parse_errors_carry_line_numbers () =
  let line_of s = try ignore (Gio.mutations_of_string s); -1 with Gio.Parse_error (l, _) -> l in
  checki "unknown keyword" 1 (line_of "frobnicate 0 1\n");
  checki "short setw" 1 (line_of "setw 0 1\n");
  checki "long linkdown" 1 (line_of "linkdown 0 1 2\n");
  checki "bad endpoint" 2 (line_of "setw 0 1 2.0\nlinkup 0 x 1.0\n");
  checki "bad weight" 2 (line_of "nodedown 3\nsetw 0 1 heavy\n");
  checki "non-finite weight" 1 (line_of "linkup 0 1 inf\n");
  checki "negative weight" 1 (line_of "setw 0 1 -2.0\n");
  (* blank lines and comments are skipped but still counted *)
  checki "comments counted" 4 (line_of "# journal\n\nsetw 0 1 2.0\nbogus\n");
  checkb "empty log ok" true (Gio.mutations_of_string "" = []);
  checkb "comment-only log ok" true (Gio.mutations_of_string "# nothing\n" = [])

let test_mutation_log_file_roundtrip () =
  let mus = [ Graph.Link_down (4, 7); Graph.Set_weight (1, 2, 3.75) ] in
  let path = Filename.temp_file "crmut" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Gio.mutations_to_string mus);
      close_out oc;
      checkb "file roundtrip" true (Gio.load_mutations path = mus))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let graph_gen =
  (* random connected graph via generator, varied seed/size *)
  QCheck.Gen.(
    map2
      (fun seed n ->
        let rng = Rng.create seed in
        Generators.erdos_renyi rng ~n:(n + 5) ~avg_degree:3.0)
      (int_range 0 1000) (int_range 5 60))

let arb_graph = QCheck.make ~print:(fun g -> Printf.sprintf "<graph n=%d m=%d>" (Graph.n g) (Graph.m g)) graph_gen

(* an applicable random mutation for the current graph, weights kept
   integral so journal round-trips are trivially exact to compare *)
let random_mutation rng g =
  let n = Graph.n g in
  let es = Array.of_list (Graph.edges g) in
  let w () = 1.0 +. float_of_int (Rng.int rng 7) in
  match Rng.int rng 5 with
  | 0 when Array.length es > 0 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Set_weight (u, v, w ())
  | 1 when Array.length es > 1 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Link_down (u, v)
  | 2 ->
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Graph.has_edge g u v) then Graph.Link_up (u, v, w ())
      else Graph.Node_up (Rng.int rng n)
  | 3 -> Graph.Node_down (Rng.int rng n)
  | _ -> Graph.Node_up (Rng.int rng n)

let random_script seed =
  let rng = Rng.create seed in
  let n = 12 + Rng.int rng 28 in
  let g0 = Generators.erdos_renyi rng ~n ~avg_degree:3.5 in
  let g0 = Graph.reweight g0 (fun _ _ _ -> 1.0 +. float_of_int (Rng.int rng 7)) in
  let steps = 1 + Rng.int rng 6 in
  let rec go g acc k =
    if k = 0 then (g0, List.rev acc)
    else
      let mu = random_mutation rng g in
      go (Graph.apply g mu) (mu :: acc) (k - 1)
  in
  go g0 [] steps

let arb_script =
  QCheck.make
    ~print:(fun (_, mus) -> String.concat "; " (List.map Graph.mutation_to_string mus))
    QCheck.Gen.(map random_script (int_range 0 100000))

let sssp_equal (a : Dijkstra.result) (b : Dijkstra.result) =
  a.Dijkstra.dist = b.Dijkstra.dist
  && a.Dijkstra.parent = b.Dijkstra.parent
  && a.Dijkstra.parent_port = b.Dijkstra.parent_port

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"dijkstra agrees with bellman-ford" ~count:30 arb_graph (fun g ->
        let d1 = (Dijkstra.run g 0).Dijkstra.dist in
        let d2 = Dijkstra.bellman_ford g 0 in
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) d1 d2);
    Test.make ~name:"ball sizes monotone in radius" ~count:30 arb_graph (fun g ->
        let b = Ball.of_dijkstra (Dijkstra.run g 0) in
        let ok = ref true in
        for r = 0 to 20 do
          let r1 = float_of_int r /. 2.0 and r2 = float_of_int (r + 1) /. 2.0 in
          if Ball.ball_size b r1 > Ball.ball_size b r2 then ok := false
        done;
        !ok);
    Test.make ~name:"closest returns sorted distances" ~count:30 arb_graph (fun g ->
        let res = Dijkstra.run g 0 in
        let b = Ball.of_dijkstra res in
        let cl = Ball.closest b 10 in
        let ok = ref true in
        for i = 0 to Array.length cl - 2 do
          if res.Dijkstra.dist.(cl.(i)) > res.Dijkstra.dist.(cl.(i + 1)) then ok := false
        done;
        !ok);
    Test.make ~name:"tree path endpoints and adjacency" ~count:30 arb_graph (fun g ->
        let res = Dijkstra.run g 0 in
        let ok = ref true in
        for t = 0 to Graph.n g - 1 do
          if res.Dijkstra.dist.(t) < infinity then begin
            let p = Dijkstra.path_to res t in
            (match p with
            | [] -> ok := false
            | first :: _ -> if first <> 0 then ok := false);
            (match List.rev p with
            | last :: _ -> if last <> t then ok := false
            | [] -> ok := false);
            let rec adj = function
              | a :: (b :: _ as rest) ->
                  if not (Graph.has_edge g a b) then ok := false;
                  adj rest
              | _ -> ()
            in
            adj p
          end
        done;
        !ok);
    Test.make ~name:"mutation log roundtrips bit-identically" ~count:40 arb_script
      (fun (_, mus) ->
        (* to_string . of_string is the identity on every journal: the
           %.17g spelling round-trips any float weight exactly *)
        Gio.mutations_of_string (Gio.mutations_to_string mus) = mus);
    Test.make ~name:"apply_all equals iterated apply" ~count:30 arb_script (fun (g0, mus) ->
        let a = Graph.apply_all g0 mus in
        let b = List.fold_left Graph.apply g0 mus in
        Graph.n a = Graph.n b && Graph.edges a = Graph.edges b);
    Test.make ~name:"incremental repair equals fresh compute" ~count:25 arb_script
      (fun (g0, mus) ->
        (* chain repair_mutation over the script; every single-source
           result (distances, parents, ports) must be bit-identical to
           an APSP computed from scratch on the final graph *)
        let apsp =
          List.fold_left (fun a mu -> fst (Apsp.repair_mutation a mu)) (Apsp.compute g0) mus
        in
        let fresh = Apsp.compute (Apsp.graph apsp) in
        let ok = ref true in
        for s = 0 to Graph.n g0 - 1 do
          if not (sssp_equal (Apsp.sssp apsp s) (Apsp.sssp fresh s)) then ok := false
        done;
        !ok);
    Test.make ~name:"gio roundtrip preserves structure" ~count:20 arb_graph (fun g ->
        let g' = Gio.of_string (Gio.to_string g) in
        Graph.n g = Graph.n g' && Graph.m g = Graph.m g');
    Test.make ~name:"induced subgraph edges exist in parent" ~count:20 arb_graph (fun g ->
        let k = min 10 (Graph.n g) in
        let nodes = Array.init k (fun i -> i) in
        let sub, map = Graph.induced g nodes in
        let ok = ref true in
        Graph.iter_edges sub (fun u v w ->
            match Graph.edge_weight g map.(u) map.(v) with
            | Some w' when Float.abs (w -. w') < 1e-12 -> ()
            | _ -> ok := false);
        !ok);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "edges" `Quick test_graph_edges;
          Alcotest.test_case "ports" `Quick test_graph_ports;
          Alcotest.test_case "parallel merged" `Quick test_graph_parallel_edges_merged;
          Alcotest.test_case "invalid inputs" `Quick test_graph_invalid_inputs;
          Alcotest.test_case "names" `Quick test_graph_names;
          Alcotest.test_case "relabel" `Quick test_graph_relabel;
          Alcotest.test_case "normalize" `Quick test_graph_normalize;
          Alcotest.test_case "reweight once per edge" `Quick test_graph_reweight_once_per_edge;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "hash is structural" `Quick test_graph_hash_structural;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "decrease" `Quick test_heap_decrease;
          Alcotest.test_case "insert_or_decrease" `Quick test_heap_insert_or_decrease;
          Alcotest.test_case "errors" `Quick test_heap_errors;
          Alcotest.test_case "random sorts" `Quick test_heap_random_sorts;
        ] );
      ("unionfind", [ Alcotest.test_case "basic" `Quick test_unionfind ]);
      ( "dijkstra",
        [
          Alcotest.test_case "fixture distances" `Quick test_dijkstra_fixture;
          Alcotest.test_case "parent ports" `Quick test_dijkstra_parent_ports;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "bounded" `Quick test_dijkstra_bounded;
          Alcotest.test_case "restricted" `Quick test_dijkstra_restricted;
          Alcotest.test_case "vs bellman-ford" `Quick test_dijkstra_vs_bellman_ford;
          Alcotest.test_case "eccentricity" `Quick test_dijkstra_eccentricity;
        ] );
      ( "ball",
        [
          Alcotest.test_case "basic" `Quick test_ball_basic;
          Alcotest.test_case "kth and closest" `Quick test_ball_kth_and_closest;
          Alcotest.test_case "closest_in" `Quick test_ball_closest_in;
          Alcotest.test_case "excludes unreachable" `Quick test_ball_excludes_unreachable;
          Alcotest.test_case "tie break" `Quick test_ball_tie_break;
        ] );
      ( "apsp",
        [
          Alcotest.test_case "matches dijkstra" `Quick test_apsp_matches_dijkstra;
          Alcotest.test_case "symmetry and triangle" `Quick test_apsp_symmetry_and_triangle;
          Alcotest.test_case "metrics" `Quick test_apsp_metrics;
          Alcotest.test_case "disconnected" `Quick test_apsp_disconnected;
          Alcotest.test_case "parallel matches sequential" `Quick test_apsp_parallel_matches_sequential;
          Alcotest.test_case "parallel single-domain fallback" `Quick test_apsp_parallel_single_domain_fallback;
        ] );
      ( "component",
        [
          Alcotest.test_case "split" `Quick test_components;
          Alcotest.test_case "connected" `Quick test_components_connected;
        ] );
      ( "generators",
        [
          Alcotest.test_case "erdos_renyi" `Quick test_gen_erdos_renyi;
          Alcotest.test_case "geometric" `Quick test_gen_geometric;
          Alcotest.test_case "grid and torus" `Quick test_gen_grid_torus;
          Alcotest.test_case "ring chords" `Quick test_gen_ring_chords;
          Alcotest.test_case "tree" `Quick test_gen_tree;
          Alcotest.test_case "preferential" `Quick test_gen_preferential;
          Alcotest.test_case "power law" `Quick test_gen_power_law;
          Alcotest.test_case "power law exponent shapes density" `Quick
            test_gen_power_law_exponent_shapes_density;
          Alcotest.test_case "isp" `Quick test_gen_isp;
          Alcotest.test_case "stretch weights" `Quick test_gen_stretch_weights;
          Alcotest.test_case "exponential line" `Quick test_gen_exponential_line;
          Alcotest.test_case "dumbbell" `Quick test_gen_dumbbell;
        ] );
      ( "gio",
        [
          Alcotest.test_case "roundtrip" `Quick test_gio_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_gio_file_roundtrip;
          Alcotest.test_case "bad input" `Quick test_gio_bad_input;
          Alcotest.test_case "parse errors carry line numbers" `Quick
            test_gio_parse_errors_carry_line_numbers;
          Alcotest.test_case "parse error message" `Quick test_gio_parse_error_message_mentions_reason;
          Alcotest.test_case "comments" `Quick test_gio_comments_and_blanks;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "setw preserves ports" `Quick test_mutation_setw_preserves_ports;
          Alcotest.test_case "link topology" `Quick test_mutation_link_topology;
          Alcotest.test_case "node down and up" `Quick test_mutation_node_down_up;
          Alcotest.test_case "validation" `Quick test_mutation_validation;
          Alcotest.test_case "structural classification" `Quick test_mutation_structural;
          Alcotest.test_case "log roundtrip" `Quick test_mutation_log_roundtrip;
          Alcotest.test_case "log parse errors carry line numbers" `Quick
            test_mutation_log_parse_errors_carry_line_numbers;
          Alcotest.test_case "log file roundtrip" `Quick test_mutation_log_file_roundtrip;
        ] );
      ("properties", qsuite);
    ]
