(* Tests for the guard stack (lib/guard), pool chaos injection, and the
   guarded serving path end-to-end.  The suite pins the three ISSUE
   acceptance properties:

   - injected crashes, stalls and overload always terminate in
     structured outcomes (no hang, no uncaught exception);
   - with chaos off and Policy.off the guarded path is bit-identical to
     the unguarded engine, across pool widths and cache settings;
   - the guard.* counters reconcile exactly with the per-query outcome
     tally that the serve report carries. *)

module Rng = Cr_util.Rng
module Pool = Cr_util.Domain_pool
module Jsonl = Cr_util.Jsonl
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Guard = Cr_guard
module Clock = Cr_guard.Clock
module Deadline = Cr_guard.Deadline
module Retry = Cr_guard.Retry
module Breaker = Cr_guard.Breaker
module Shed = Cr_guard.Shed
module Rejection = Cr_guard.Rejection
module Chaos = Cr_guard.Chaos
module Policy = Cr_guard.Policy
module Engine = Cr_engine.Engine
module Workload = Cr_engine.Workload
module Serve = Cr_engine.Serve
module Chaos_sweep = Cr_engine.Chaos_sweep
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

let prepared_graph ?(n = 80) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  Apsp.compute (Graph.normalize g)

let agm_scheme ?(k = 3) ?(seed = 1) apsp =
  Agm06.scheme (Agm06.build ~params:(Params.scaled ~k ~seed ()) apsp)

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let raises_invalid f = try ignore (f ()); false with Invalid_argument _ -> true

(* tag an outcome for interleaving-independent comparisons *)
let tag = function
  | Ok _ -> "ok"
  | Error Rejection.Timed_out -> "timeout"
  | Error Rejection.Shed -> "shed"
  | Error Rejection.Breaker_open -> "breaker"
  | Error Rejection.Worker_lost -> "lost"

(* ------------------------------------------------------------------ *)
(* Clock + Deadline *)

let test_deadline_unbounded () =
  let d = Deadline.start () in
  checkb "not bounded" false (Deadline.bounded d);
  checkb "never expires" false (Deadline.expired d);
  checkb "remaining infinite" true (Deadline.remaining d = infinity)

let test_deadline_zero_budget () =
  let d = Deadline.start ~budget_s:0.0 () in
  checkb "bounded" true (Deadline.bounded d);
  checkb "already expired" true (Deadline.expired d)

let test_deadline_fake_clock () =
  Clock.with_fake (fun advance ->
      let d = Deadline.start ~budget_s:10.0 () in
      advance 4.0;
      checkf "elapsed" 4.0 (Deadline.elapsed d);
      checkf "remaining" 6.0 (Deadline.remaining d);
      checkb "not yet" false (Deadline.expired d);
      advance 6.0;
      checkb "expired at budget" true (Deadline.expired d);
      advance 1.0;
      checkb "stays expired" true (Deadline.expired d);
      checkb "remaining negative" true (Deadline.remaining d < 0.0))

let test_deadline_negative_raises () =
  checkb "negative budget" true (raises_invalid (fun () -> Deadline.start ~budget_s:(-1.0) ()))

let test_fake_clock_restores () =
  let before = !Clock.now in
  (try Clock.with_fake (fun _ -> failwith "boom") with Failure _ -> ());
  checkb "real clock restored after exception" true (!Clock.now == before)

let test_monotonic_never_goes_backwards () =
  let last = ref (Clock.monotonic ()) in
  for _ = 1 to 1000 do
    let t = Clock.monotonic () in
    checkb "non-decreasing" true (t >= !last);
    last := t
  done;
  (* the default now is the monotonic source, so deadlines are immune
     to wall-clock steps *)
  let a = !Clock.now () in
  let b = !Clock.now () in
  checkb "default clock monotonic too" true (b >= a)

let test_default_sleep_advances_clock () =
  let t0 = !Clock.now () in
  !Clock.sleep 0.002;
  checkb "slept at least the request" true (!Clock.now () -. t0 >= 0.0015)

(* ------------------------------------------------------------------ *)
(* Retry *)

let test_retry_none_is_identity () =
  let calls = ref 0 in
  let r = Retry.run Retry.none ~key:7 (fun ~attempt ->
      incr calls;
      checki "attempt" 1 attempt;
      Error "nope")
  in
  checki "single attempt" 1 !calls;
  checkb "last error returned" true (r = Error "nope")

let test_retry_succeeds_after_failures () =
  Clock.with_fake (fun _ ->
      let p = Retry.make ~max_attempts:4 ~base_s:0.001 () in
      let calls = ref 0 in
      let r = Retry.run p ~key:3 (fun ~attempt ->
          incr calls;
          if attempt < 3 then Error "transient" else Ok attempt)
      in
      checki "three attempts" 3 !calls;
      checkb "success result" true (r = Ok 3);
      (* backoff slept through the fake clock: time moved forward by
         exactly backoff(1) + backoff(2) *)
      let expected = Retry.backoff_s p ~key:3 ~attempt:1 +. Retry.backoff_s p ~key:3 ~attempt:2 in
      checkf "slept the deterministic backoffs" expected (!Clock.now ()))

let test_retry_exhaustion_keeps_last_error () =
  Clock.with_fake (fun _ ->
      let p = Retry.make ~max_attempts:3 ~base_s:0.0001 () in
      let calls = ref 0 in
      let r = Retry.run p ~key:0 (fun ~attempt ->
          incr calls;
          Error (Printf.sprintf "fail-%d" attempt))
      in
      checki "all attempts spent" 3 !calls;
      checkb "last error" true (r = Error "fail-3"))

let test_retry_backoff_deterministic_and_bounded () =
  let p = Retry.make ~max_attempts:5 ~base_s:0.002 ~multiplier:2.0 ~jitter:0.5 ~seed:9 () in
  for attempt = 1 to 4 do
    let b1 = Retry.backoff_s p ~key:11 ~attempt in
    let b2 = Retry.backoff_s p ~key:11 ~attempt in
    checkf (Printf.sprintf "pure attempt %d" attempt) b1 b2;
    let nominal = 0.002 *. (2.0 ** float_of_int (attempt - 1)) in
    checkb "within jitter band" true (b1 >= 0.5 *. nominal && b1 <= 1.5 *. nominal)
  done;
  (* distinct keys draw from distinct streams *)
  let distinct = ref false in
  for key = 0 to 7 do
    if Retry.backoff_s p ~key ~attempt:1 <> Retry.backoff_s p ~key:100 ~attempt:1 then
      distinct := true
  done;
  checkb "keys decorrelate" true !distinct

let test_retry_validation () =
  checkb "zero attempts" true (raises_invalid (fun () -> Retry.make ~max_attempts:0 ()));
  checkb "negative base" true
    (raises_invalid (fun () -> Retry.make ~max_attempts:2 ~base_s:(-0.1) ()));
  checkb "multiplier < 1" true
    (raises_invalid (fun () -> Retry.make ~max_attempts:2 ~multiplier:0.5 ()));
  checkb "jitter > 1" true
    (raises_invalid (fun () -> Retry.make ~max_attempts:2 ~jitter:1.5 ()));
  checkb "attempt 0 backoff" true
    (raises_invalid (fun () -> Retry.backoff_s Retry.none ~key:0 ~attempt:0))

(* ------------------------------------------------------------------ *)
(* Breaker *)

let tripping_config =
  Breaker.make_config ~window:8 ~threshold:0.5 ~min_samples:4 ~cooldown_s:10.0 ~probes:2 ()

let trip br =
  for _ = 1 to 4 do
    checkb "admitted while closed" true (Breaker.allow br);
    Breaker.record br ~ok:false
  done

let test_breaker_trips_at_threshold () =
  let br = Breaker.create tripping_config in
  checkb "starts closed" true (Breaker.state br = Breaker.Closed);
  trip br;
  checkb "open after threshold" true (Breaker.state br = Breaker.Open);
  checkb "rejects while open" false (Breaker.allow br);
  checki "one trip" 1 (Breaker.opens br)

let test_breaker_needs_min_samples () =
  let br = Breaker.create tripping_config in
  for _ = 1 to 3 do
    ignore (Breaker.allow br);
    Breaker.record br ~ok:false
  done;
  checkb "still closed below min_samples" true (Breaker.state br = Breaker.Closed);
  checkf "failure rate" 1.0 (Breaker.failure_rate br)

let test_breaker_halfopen_recovery () =
  Clock.with_fake (fun advance ->
      let br = Breaker.create tripping_config in
      trip br;
      checkb "open rejects" false (Breaker.allow br);
      advance 10.5;
      (* cooldown elapsed: the next allow takes a half-open probe slot *)
      checkb "probe admitted" true (Breaker.allow br);
      checkb "half-open" true (Breaker.state br = Breaker.Half_open);
      Breaker.record br ~ok:true;
      checkb "second probe admitted" true (Breaker.allow br);
      Breaker.record br ~ok:true;
      checkb "closed after probe successes" true (Breaker.state br = Breaker.Closed);
      checkf "window reset" 0.0 (Breaker.failure_rate br))

let test_breaker_halfopen_failure_reopens () =
  Clock.with_fake (fun advance ->
      let br = Breaker.create tripping_config in
      trip br;
      advance 10.5;
      checkb "probe admitted" true (Breaker.allow br);
      Breaker.record br ~ok:false;
      checkb "re-opened" true (Breaker.state br = Breaker.Open);
      checkb "rejects again" false (Breaker.allow br);
      checki "two trips" 2 (Breaker.opens br);
      (* the cooldown restarted at the re-open *)
      advance 5.0;
      checkb "still cooling down" false (Breaker.allow br);
      advance 5.5;
      checkb "half-open again" true (Breaker.allow br))

let test_breaker_window_rate () =
  let br = Breaker.create (Breaker.make_config ~window:4 ~threshold:0.99 ~min_samples:4 ()) in
  ignore (Breaker.allow br); Breaker.record br ~ok:false;
  ignore (Breaker.allow br); Breaker.record br ~ok:false;
  ignore (Breaker.allow br); Breaker.record br ~ok:true;
  ignore (Breaker.allow br); Breaker.record br ~ok:true;
  checkf "2/4 failed" 0.5 (Breaker.failure_rate br);
  (* two more successes slide the failures out of the window *)
  ignore (Breaker.allow br); Breaker.record br ~ok:true;
  ignore (Breaker.allow br); Breaker.record br ~ok:true;
  checkf "window slid" 0.0 (Breaker.failure_rate br);
  checkb "never opened" true (Breaker.state br = Breaker.Closed)

let test_breaker_config_validation () =
  checkb "zero window" true (raises_invalid (fun () -> Breaker.make_config ~window:0 ()));
  checkb "threshold 0" true (raises_invalid (fun () -> Breaker.make_config ~threshold:0.0 ()));
  checkb "threshold > 1" true (raises_invalid (fun () -> Breaker.make_config ~threshold:1.1 ()));
  checkb "negative cooldown" true
    (raises_invalid (fun () -> Breaker.make_config ~cooldown_s:(-1.0) ()));
  checkb "zero probes" true (raises_invalid (fun () -> Breaker.make_config ~probes:0 ()))

(* ------------------------------------------------------------------ *)
(* Shed *)

let test_shed_queue_depth () =
  let cfg = Shed.make_config ~max_queue:5 () in
  checkb "under limit admitted" false
    (Shed.decide cfg ~queued:5 ~remaining_s:infinity ~est_cost_s:0.0);
  checkb "over limit shed" true (Shed.decide cfg ~queued:6 ~remaining_s:infinity ~est_cost_s:0.0)

let test_shed_deadline_feasibility () =
  let cfg = Shed.make_config ~headroom:2.0 () in
  checkb "infeasible shed" true (Shed.decide cfg ~queued:0 ~remaining_s:0.015 ~est_cost_s:0.01);
  checkb "feasible admitted" false
    (Shed.decide cfg ~queued:0 ~remaining_s:0.025 ~est_cost_s:0.01);
  checkb "no estimate admits" false
    (Shed.decide cfg ~queued:0 ~remaining_s:0.0001 ~est_cost_s:0.0);
  checkb "unbounded admits" false
    (Shed.decide cfg ~queued:0 ~remaining_s:infinity ~est_cost_s:10.0);
  checkb "negative max_queue" true (raises_invalid (fun () -> Shed.make_config ~max_queue:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Rejection + Chaos plans *)

let test_rejection_names () =
  checki "four kinds" 4 (List.length Rejection.all);
  checks "timeout counter" "guard.timeouts" (Rejection.counter Rejection.Timed_out);
  checks "shed counter" "guard.sheds" (Rejection.counter Rejection.Shed);
  checks "breaker counter" "guard.breaker_opens" (Rejection.counter Rejection.Breaker_open);
  checks "lost counter" "guard.worker_lost" (Rejection.counter Rejection.Worker_lost);
  List.iter (fun r -> checkb "printable" true (String.length (Rejection.to_string r) > 0))
    Rejection.all

let test_chaos_plan_deterministic () =
  let a = Chaos.plan ~fail_rate:0.3 ~fail_attempts:2 ~qstall_rate:0.2 ~qstall_s:0.001 ~seed:7 () in
  let b = Chaos.plan ~fail_rate:0.3 ~fail_attempts:2 ~qstall_rate:0.2 ~qstall_s:0.001 ~seed:7 () in
  let hit = ref 0 in
  for q = 0 to 999 do
    checki "fails pure" (Chaos.query_fails a ~q) (Chaos.query_fails b ~q);
    checkf "stalls pure" (Chaos.query_stall_s a ~q) (Chaos.query_stall_s b ~q);
    if Chaos.query_fails a ~q > 0 then incr hit
  done;
  (* a 0.3 rate over 1000 queries lands well inside [150, 450] *)
  checkb "rate roughly honored" true (!hit > 150 && !hit < 450);
  checkb "hit queries eat fail_attempts" true
    (Chaos.query_fails a ~q:0 = 0 || Chaos.query_fails a ~q:0 = 2)

let test_chaos_validation_and_presets () =
  checkb "rate > 1" true (raises_invalid (fun () -> Chaos.plan ~fail_rate:1.5 ~seed:1 ()));
  checkb "rate < 0" true (raises_invalid (fun () -> Chaos.plan ~crash_rate:(-0.1) ~seed:1 ()));
  checkb "fail_attempts 0" true
    (raises_invalid (fun () -> Chaos.plan ~fail_attempts:0 ~seed:1 ()));
  checkb "none is none" true (Chaos.is_none Chaos.none);
  checki "five presets" 5 (List.length (Chaos.presets ~seed:3));
  (match Chaos.preset_of_string ~seed:3 "storm" with
  | Ok p -> checks "storm label" "storm" (Chaos.label p)
  | Error _ -> Alcotest.fail "storm preset missing");
  checkb "unknown preset" true (Result.is_error (Chaos.preset_of_string ~seed:3 "hurricane"));
  checkb "policy presets" true
    (List.map fst (Policy.presets ~batch_budget_s:1.0) = [ "off"; "serving"; "strict" ]);
  checkb "off is off" true (Policy.is_off Policy.off);
  checkb "serving not off" false (Policy.is_off Policy.serving)

(* ------------------------------------------------------------------ *)
(* Domain_pool chaos *)

let test_pool_chaos_exactly_once () =
  with_pool ~domains:4 (fun pool ->
      let chaos = Pool.chaos_plan ~crash_rate:1.0 ~seed:5 () in
      let n = 500 in
      let hits = Array.make n 0 in
      let burn () =
        (* a few microseconds per index, so doomed workers claim chunks
           before the surviving caller drains the whole counter *)
        let s = ref 0.0 in
        for k = 1 to 2000 do s := !s +. sqrt (float_of_int k) done;
        ignore (Sys.opaque_identity !s)
      in
      let stats =
        Pool.parallel_for_stats ~chunk:1 ~chaos pool ~n (fun i ->
            burn ();
            hits.(i) <- hits.(i) + 1)
      in
      Array.iteri (fun i c -> checki (Printf.sprintf "index %d once" i) 1 c) hits;
      (* crash_rate 1.0 seals every worker lane's fate at job start; the
         caller lane survives by construction and drains the requeue *)
      checki "all worker lanes lost" 3 stats.Pool.lost_lanes;
      checkb "work requeued" true (stats.Pool.requeued > 0))

let test_pool_chaos_results_unchanged () =
  with_pool ~domains:4 (fun pool ->
      let n = 300 in
      let plain = Array.make n 0 in
      Pool.parallel_for pool ~n (fun i -> plain.(i) <- i * i);
      let chaotic = Array.make n 0 in
      let chaos = Pool.chaos_plan ~crash_rate:0.5 ~stall_rate:0.2 ~stall_s:0.0005 ~seed:11 () in
      ignore (Pool.parallel_for_stats ~chunk:2 ~chaos pool ~n (fun i -> chaotic.(i) <- i * i));
      checkb "results identical under chaos" true (plain = chaotic))

let test_pool_reusable_after_chaos () =
  with_pool ~domains:3 (fun pool ->
      let chaos = Pool.chaos_plan ~crash_rate:1.0 ~seed:2 () in
      let stats = Pool.parallel_for_stats ~chunk:1 ~chaos pool ~n:100 (fun _ -> ()) in
      checkb "lanes were lost" true (stats.Pool.lost_lanes > 0);
      (* chaos-free run on the same pool: full width, clean stats *)
      let total = Atomic.make 0 in
      let stats2 = Pool.parallel_for_stats pool ~n:64 (fun _ -> Atomic.incr total) in
      checki "second run covers everything" 64 (Atomic.get total);
      checki "no losses without chaos" 0 stats2.Pool.lost_lanes;
      checki "no requeues without chaos" 0 stats2.Pool.requeued)

let test_pool_exception_under_chaos () =
  with_pool ~domains:3 (fun pool ->
      let chaos = Pool.chaos_plan ~crash_rate:0.5 ~seed:4 () in
      let raised =
        try
          ignore
            (Pool.parallel_for_stats ~chunk:1 ~chaos pool ~n:200 (fun i ->
                 if i = 153 then failwith "poisoned"));
          false
        with Failure m -> m = "poisoned"
      in
      checkb "body exception beats chaos" true raised;
      (* regression: a poisoned + chaotic run must leave the pool usable *)
      let ok = Array.make 32 false in
      Pool.parallel_for pool ~n:32 (fun i -> ok.(i) <- true);
      Array.iter (checkb "usable after poisoned chaos run" true) ok)

let test_pool_stats_clean_without_chaos () =
  with_pool ~domains:2 (fun pool ->
      let stats = Pool.parallel_for_stats pool ~n:50 (fun _ -> ()) in
      checkb "no_stats" true (stats = Pool.no_stats));
  checkb "chaos_plan validates rates" true
    (raises_invalid (fun () -> Pool.chaos_plan ~crash_rate:2.0 ~seed:1 ()))

let test_pool_chaos_stalls_counted () =
  with_pool ~domains:2 (fun pool ->
      let chaos = Pool.chaos_plan ~stall_rate:1.0 ~stall_s:0.0002 ~seed:6 () in
      let stats = Pool.parallel_for_stats ~chunk:8 ~chaos pool ~n:64 (fun _ -> ()) in
      checkb "stalls counted" true (stats.Pool.stalls > 0);
      checki "stalls lose no lanes" 0 stats.Pool.lost_lanes)

(* ------------------------------------------------------------------ *)
(* Engine guarded path *)

let test_guarded_off_bit_identical () =
  let apsp = prepared_graph 21 ~n:70 in
  let sch = agm_scheme apsp in
  let pairs = Experiment.default_pairs ~seed:22 apsp ~count:300 in
  let reference = Simulator.measure_all apsp sch pairs in
  List.iter
    (fun domains ->
      List.iter
        (fun cache ->
          with_pool ~domains (fun pool ->
              let engine = Engine.create ~cache ~pool () in
              let outcomes, _, gstats = Engine.run_guarded engine apsp sch pairs in
              let unwrapped =
                Array.map
                  (function Ok m -> m | Error _ -> Alcotest.fail "rejection with guards off")
                  outcomes
              in
              checkb
                (Printf.sprintf "bit-identical (domains=%d cache=%d)" domains cache)
                true
                (unwrapped = reference);
              checki "all ok" (Array.length pairs) gstats.Engine.ok))
        [ 0; 256 ])
    [ 1; 2; 4 ]

let test_guarded_zero_budget_times_out () =
  let apsp = prepared_graph 23 ~n:40 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:24 apsp ~count:100 in
  with_pool ~domains:2 (fun pool ->
      let engine = Engine.create ~policy:(Policy.make ~batch_budget_s:0.0 ()) ~pool () in
      let outcomes, _, gstats = Engine.run_guarded engine apsp sch pairs in
      Array.iter
        (fun o -> checkb "timed out" true (o = Error Rejection.Timed_out))
        outcomes;
      checki "tally timed_out" 100 gstats.Engine.timed_out;
      checki "tally ok" 0 gstats.Engine.ok)

let test_guarded_flaky_lost_vs_retry_heals () =
  let apsp = prepared_graph 25 ~n:50 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:26 apsp ~count:200 in
  let chaos = Chaos.plan ~fail_rate:1.0 ~fail_attempts:1 ~seed:8 () in
  with_pool ~domains:2 (fun pool ->
      (* no retry: every query's single attempt eats the injected fault *)
      let engine = Engine.create ~pool () in
      let outcomes, _, gstats = Engine.run_guarded ~chaos engine apsp sch pairs in
      Array.iter (fun o -> checkb "lost" true (o = Error Rejection.Worker_lost)) outcomes;
      checki "all lost" 200 gstats.Engine.worker_lost;
      (* one retry absorbs a 1-attempt transient fault completely *)
      let healed =
        Engine.create ~policy:(Policy.make ~retry:(Retry.make ~max_attempts:2 ~base_s:0.0 ()) ())
          ~pool ()
      in
      let outcomes, _, gstats = Engine.run_guarded ~chaos healed apsp sch pairs in
      Array.iter (fun o -> checkb "healed" true (Result.is_ok o)) outcomes;
      checki "all ok" 200 gstats.Engine.ok;
      checki "one extra attempt per query" 200 gstats.Engine.retries)

let test_guarded_lost_set_is_deterministic () =
  let apsp = prepared_graph 27 ~n:60 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:28 apsp ~count:400 in
  let chaos = Chaos.plan ~fail_rate:0.4 ~fail_attempts:1 ~seed:13 () in
  let run domains =
    with_pool ~domains (fun pool ->
        let engine = Engine.create ~pool () in
        let outcomes, _, _ = Engine.run_guarded ~chaos engine apsp sch pairs in
        Array.map tag outcomes)
  in
  let one = run 1 and four = run 4 in
  checkb "lost set invariant across widths" true (one = four);
  (* and it is exactly the set the plan says *)
  Array.iteri
    (fun q t ->
      let expected = if Chaos.query_fails chaos ~q > 0 then "lost" else "ok" in
      checks (Printf.sprintf "query %d" q) expected t)
    one

let test_guarded_breaker_cuts_off_shard () =
  let apsp = prepared_graph 29 ~n:40 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:30 apsp ~count:20 in
  let chaos = Chaos.plan ~fail_rate:1.0 ~fail_attempts:1 ~seed:17 () in
  let policy =
    Policy.make
      ~breaker:(Breaker.make_config ~window:8 ~threshold:1.0 ~min_samples:4 ~cooldown_s:1e9 ())
      ()
  in
  with_pool ~domains:1 (fun pool ->
      let engine = Engine.create ~policy ~pool () in
      let outcomes, _, gstats = Engine.run_guarded ~chaos engine apsp sch pairs in
      (* single shard: 4 failures trip the breaker, the rest are cut off *)
      checki "losses before trip" 4 gstats.Engine.worker_lost;
      checki "breaker rejects the rest" 16 gstats.Engine.breaker_open;
      Array.iteri
        (fun q o -> checks (Printf.sprintf "query %d" q)
            (if q < 4 then "lost" else "breaker") (tag o))
        outcomes;
      checkb "breaker reports open" true (Engine.breaker_state engine ~shard:0 = Some Breaker.Open))

let test_guarded_shed_under_queue_limit () =
  let apsp = prepared_graph 31 ~n:40 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:32 apsp ~count:50 in
  let policy = Policy.make ~shed:(Shed.make_config ~max_queue:0 ()) () in
  with_pool ~domains:1 (fun pool ->
      let engine = Engine.create ~policy ~pool () in
      let outcomes, _, gstats = Engine.run_guarded engine apsp sch pairs in
      (* queue depth 0: only the shard's last query is admitted *)
      checki "one served" 1 gstats.Engine.ok;
      checki "rest shed" 49 gstats.Engine.shed;
      checkb "last query is the served one" true (Result.is_ok outcomes.(49)))

let test_guarded_outcomes_partition () =
  let apsp = prepared_graph 33 ~n:60 in
  let sch = agm_scheme apsp in
  let pairs = Experiment.default_pairs ~seed:34 apsp ~count:300 in
  let chaos =
    match Chaos.preset_of_string ~seed:42 "storm" with Ok c -> c | Error e -> failwith e
  in
  with_pool ~domains:4 (fun pool ->
      let engine = Engine.create ~policy:Policy.serving ~pool () in
      let outcomes, m, g = Engine.run_guarded ~chaos engine apsp sch pairs in
      checki "metrics count" 300 m.Engine.queries;
      checki "outcomes total" 300 (Array.length outcomes);
      checki "tally partitions queries" 300
        (g.Engine.ok + g.Engine.timed_out + g.Engine.shed + g.Engine.breaker_open
       + g.Engine.worker_lost);
      (* tally matches a recount of the outcome array *)
      let recount t = Array.fold_left (fun n o -> if tag o = t then n + 1 else n) 0 outcomes in
      checki "ok recount" g.Engine.ok (recount "ok");
      checki "lost recount" g.Engine.worker_lost (recount "lost");
      checki "breaker recount" g.Engine.breaker_open (recount "breaker"))

let test_guarded_counters_reconcile () =
  let apsp = prepared_graph 35 ~n:50 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:36 apsp ~count:250 in
  let chaos = Chaos.plan ~fail_rate:0.3 ~fail_attempts:2 ~seed:21 () in
  let counters = Cr_obs.Counters.create () in
  with_pool ~domains:3 (fun pool ->
      let engine = Engine.create ~policy:Policy.serving ~counters ~pool () in
      let _, _, g = Engine.run_guarded ~chaos engine apsp sch pairs in
      let get name = Cr_obs.Counters.get counters name in
      checki "guard.timeouts" g.Engine.timed_out (get "guard.timeouts");
      checki "guard.sheds" g.Engine.shed (get "guard.sheds");
      checki "guard.breaker_opens" g.Engine.breaker_open (get "guard.breaker_opens");
      checki "guard.worker_lost" g.Engine.worker_lost (get "guard.worker_lost");
      checki "guard.retries" g.Engine.retries (get "guard.retries");
      checki "guard.requeues" g.Engine.requeues (get "guard.requeues");
      checki "engine.queries" 250 (get "engine.queries"))

let test_unguarded_emits_no_guard_counters () =
  let apsp = prepared_graph 37 ~n:40 in
  let sch = Baseline_tree.build apsp in
  let pairs = Experiment.default_pairs ~seed:38 apsp ~count:60 in
  let counters = Cr_obs.Counters.create () in
  with_pool ~domains:2 (fun pool ->
      let engine = Engine.create ~counters ~pool () in
      ignore (Engine.run_batch engine apsp sch pairs);
      let snapshot = Cr_obs.Counters.snapshot counters in
      checkb "no guard.* counters on the unguarded path" true
        (List.for_all
           (fun (name, _) -> not (String.length name >= 6 && String.sub name 0 6 = "guard."))
           snapshot))

(* ------------------------------------------------------------------ *)
(* Serve + Chaos_sweep *)

let test_serve_guarded_report () =
  let apsp = prepared_graph 39 ~n:60 in
  let sch = agm_scheme apsp in
  let chaos = Chaos.plan ~fail_rate:0.5 ~fail_attempts:1 ~seed:5 () in
  let r =
    Serve.run ~policy:Policy.off ~chaos ~guard_label:"off" ~domains:2 ~seed:7 ~queries:300
      ~workload:"test" apsp sch
  in
  checki "queries" 300 r.Serve.queries;
  checkb "some queries lost" true (r.Serve.guards.Engine.worker_lost > 0);
  checki "ok + rejected = queries" 300 (r.Serve.guards.Engine.ok + Serve.rejected r);
  checki "delivered only counts served" r.Serve.delivered
    (min r.Serve.delivered r.Serve.guards.Engine.ok);
  checks "chaos label carried" (Chaos.label chaos) r.Serve.chaos_label;
  (* the JSON line is strict JSON and its tally matches the report *)
  (match Jsonl.validate (Serve.report_to_json r) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid serve JSON: %s" msg);
  (* counters in the report reconcile with the guard tally *)
  let counter name = List.assoc_opt name r.Serve.counters in
  checkb "guard.worker_lost counter matches" true
    (counter "guard.worker_lost" = Some r.Serve.guards.Engine.worker_lost)

let test_serve_default_is_plain () =
  let apsp = prepared_graph 41 ~n:50 in
  let sch = Baseline_tree.build apsp in
  let plain = Serve.run ~domains:2 ~seed:9 ~queries:200 ~workload:"test" apsp sch in
  checki "everything served" 200 plain.Serve.guards.Engine.ok;
  checki "nothing rejected" 0 (Serve.rejected plain);
  checks "guard label off" "off" plain.Serve.guard_label;
  checks "chaos label none" "none" plain.Serve.chaos_label;
  (* same routing quality across pool widths under default guards: the
     determinism contract extended through Serve *)
  let wide = Serve.run ~domains:4 ~seed:9 ~queries:200 ~workload:"test" apsp sch in
  checki "delivered invariant" plain.Serve.delivered wide.Serve.delivered;
  checkf "stretch invariant" plain.Serve.stretch_mean wide.Serve.stretch_mean

let test_chaos_sweep_grid () =
  let apsp = prepared_graph 43 ~n:40 in
  let sch = Baseline_tree.build apsp in
  let cells =
    Chaos_sweep.sweep ~chaos_seed:42 ~batch_budget_s:0.5 ~domains:2 ~seed:11 ~queries:60
      ~workload:"test" apsp sch
  in
  checki "5 chaos x 3 guard cells" 15 (List.length cells);
  List.iter
    (fun (c : Chaos_sweep.cell) ->
      checki
        (Printf.sprintf "cell %s/%s partitions" c.Chaos_sweep.chaos c.Chaos_sweep.guards)
        60
        (c.Chaos_sweep.ok + c.Chaos_sweep.timed_out + c.Chaos_sweep.shed
       + c.Chaos_sweep.breaker_open + c.Chaos_sweep.worker_lost);
      match Jsonl.validate (Chaos_sweep.cell_to_json c) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "invalid cell JSON: %s" msg)
    cells;
  (* the chaos-free, guard-free corner serves everything *)
  match cells with
  | first :: _ ->
      checks "first cell chaos" "none" first.Chaos_sweep.chaos;
      checks "first cell guards" "off" first.Chaos_sweep.guards;
      checki "clean corner serves all" 60 first.Chaos_sweep.ok
  | [] -> Alcotest.fail "empty sweep"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* served_ratio semantics are pure data: build cells directly *)
let mk_cell ~queries ~ok =
  {
    Chaos_sweep.chaos = "none";
    guards = "off";
    queries;
    domains = 1;
    wall_s = 0.0;
    routes_per_sec = 0.0;
    ok;
    timed_out = 0;
    shed = 0;
    breaker_open = 0;
    worker_lost = 0;
    retries = 0;
    requeues = 0;
    lost_lanes = 0;
    stalls = 0;
    delivered = ok;
    stretch_p99 = 0.0;
    within_budget = true;
  }

let test_chaos_sweep_served_ratio_empty_cell () =
  checkb "normal cell has a ratio" true
    (Chaos_sweep.served_ratio (mk_cell ~queries:10 ~ok:7) = Some 0.7);
  checkb "all-served cell is 1.0" true
    (Chaos_sweep.served_ratio (mk_cell ~queries:10 ~ok:10) = Some 1.0);
  (* the bug this pins: a zero-query cell used to report 1.0 — an empty
     cell rendered as perfect delivery *)
  checkb "zero-query cell has no ratio" true
    (Chaos_sweep.served_ratio (mk_cell ~queries:0 ~ok:0) = None);
  let j = Chaos_sweep.cell_to_json (mk_cell ~queries:0 ~ok:0) in
  checkb "json null, not 1.0" true (contains j "\"served_ratio\":null");
  checkb "queries=0 marks the emptiness" true (contains j "\"queries\":0");
  match Jsonl.validate j with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid empty-cell JSON: %s" msg

(* ------------------------------------------------------------------ *)
(* Backoff (restart supervision) *)

module Backoff = Cr_guard.Backoff

let test_backoff_delays_grow_and_cap () =
  let b = Backoff.make ~base_s:0.01 ~multiplier:2.0 ~cap_s:0.05 ~max_restarts:10 () in
  checkf "first delay is the base" 0.01 (Backoff.delay_s b ~restart:1);
  checkf "doubles" 0.02 (Backoff.delay_s b ~restart:2);
  checkf "doubles again" 0.04 (Backoff.delay_s b ~restart:3);
  checkf "capped" 0.05 (Backoff.delay_s b ~restart:4);
  checkf "stays capped" 0.05 (Backoff.delay_s b ~restart:9)

let test_backoff_exhaustion_boundary () =
  let b = Backoff.make ~max_restarts:3 () in
  checkb "within budget" false (Backoff.exhausted b ~restart:3);
  checkb "one past the cap" true (Backoff.exhausted b ~restart:4)

let test_backoff_validation () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore (Backoff.make ());
  ignore Backoff.repair;
  raises "Backoff.make: negative base_s" (fun () ->
      ignore (Backoff.make ~base_s:(-0.01) ()));
  raises "Backoff.make: multiplier must be >= 1" (fun () ->
      ignore (Backoff.make ~multiplier:0.5 ()));
  raises "Backoff.make: cap_s must be >= base_s" (fun () ->
      ignore (Backoff.make ~base_s:0.1 ~cap_s:0.01 ()));
  raises "Backoff.make: negative max_restarts" (fun () ->
      ignore (Backoff.make ~max_restarts:(-1) ()))

let () =
  Alcotest.run "guard"
    [
      ( "deadline",
        [
          Alcotest.test_case "unbounded" `Quick test_deadline_unbounded;
          Alcotest.test_case "zero budget" `Quick test_deadline_zero_budget;
          Alcotest.test_case "fake clock expiry" `Quick test_deadline_fake_clock;
          Alcotest.test_case "negative budget rejected" `Quick test_deadline_negative_raises;
          Alcotest.test_case "fake clock restores" `Quick test_fake_clock_restores;
          Alcotest.test_case "monotonic never goes backwards" `Quick
            test_monotonic_never_goes_backwards;
          Alcotest.test_case "default sleep advances clock" `Quick
            test_default_sleep_advances_clock;
        ] );
      ( "retry",
        [
          Alcotest.test_case "none is identity" `Quick test_retry_none_is_identity;
          Alcotest.test_case "succeeds after failures" `Quick test_retry_succeeds_after_failures;
          Alcotest.test_case "exhaustion keeps last error" `Quick
            test_retry_exhaustion_keeps_last_error;
          Alcotest.test_case "backoff deterministic + bounded" `Quick
            test_retry_backoff_deterministic_and_bounded;
          Alcotest.test_case "validation" `Quick test_retry_validation;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick test_breaker_trips_at_threshold;
          Alcotest.test_case "needs min samples" `Quick test_breaker_needs_min_samples;
          Alcotest.test_case "half-open recovery" `Quick test_breaker_halfopen_recovery;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_halfopen_failure_reopens;
          Alcotest.test_case "window slides" `Quick test_breaker_window_rate;
          Alcotest.test_case "config validation" `Quick test_breaker_config_validation;
        ] );
      ( "shed",
        [
          Alcotest.test_case "queue depth" `Quick test_shed_queue_depth;
          Alcotest.test_case "deadline feasibility" `Quick test_shed_deadline_feasibility;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "delays grow and cap" `Quick test_backoff_delays_grow_and_cap;
          Alcotest.test_case "exhaustion boundary" `Quick test_backoff_exhaustion_boundary;
          Alcotest.test_case "validation" `Quick test_backoff_validation;
        ] );
      ( "chaos_plan",
        [
          Alcotest.test_case "rejection names" `Quick test_rejection_names;
          Alcotest.test_case "deterministic" `Quick test_chaos_plan_deterministic;
          Alcotest.test_case "validation + presets" `Quick test_chaos_validation_and_presets;
        ] );
      ( "pool_chaos",
        [
          Alcotest.test_case "exactly once under crashes" `Quick test_pool_chaos_exactly_once;
          Alcotest.test_case "results unchanged" `Quick test_pool_chaos_results_unchanged;
          Alcotest.test_case "reusable after chaos" `Quick test_pool_reusable_after_chaos;
          Alcotest.test_case "exception under chaos" `Quick test_pool_exception_under_chaos;
          Alcotest.test_case "clean stats without chaos" `Quick
            test_pool_stats_clean_without_chaos;
          Alcotest.test_case "stalls counted" `Quick test_pool_chaos_stalls_counted;
        ] );
      ( "engine_guarded",
        [
          Alcotest.test_case "off = bit-identical (3 widths x cache)" `Quick
            test_guarded_off_bit_identical;
          Alcotest.test_case "zero budget times out" `Quick test_guarded_zero_budget_times_out;
          Alcotest.test_case "flaky: lost vs retry heals" `Quick
            test_guarded_flaky_lost_vs_retry_heals;
          Alcotest.test_case "lost set deterministic" `Quick
            test_guarded_lost_set_is_deterministic;
          Alcotest.test_case "breaker cuts off shard" `Quick test_guarded_breaker_cuts_off_shard;
          Alcotest.test_case "shed under queue limit" `Quick test_guarded_shed_under_queue_limit;
          Alcotest.test_case "outcomes partition" `Quick test_guarded_outcomes_partition;
          Alcotest.test_case "counters reconcile" `Quick test_guarded_counters_reconcile;
          Alcotest.test_case "unguarded emits no guard counters" `Quick
            test_unguarded_emits_no_guard_counters;
        ] );
      ( "serve_guarded",
        [
          Alcotest.test_case "report + json" `Quick test_serve_guarded_report;
          Alcotest.test_case "defaults are plain" `Quick test_serve_default_is_plain;
          Alcotest.test_case "chaos sweep grid" `Quick test_chaos_sweep_grid;
          Alcotest.test_case "served_ratio of an empty cell" `Quick
            test_chaos_sweep_served_ratio_empty_cell;
        ] );
    ]
