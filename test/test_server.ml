(* Tests for the socket front end (DESIGN.md §13): address parsing,
   byte-identity with the stdin transport, hostile clients (half-line
   disconnects, oversized lines, slow readers), admission shedding,
   idle deadlines, independent interleaved sessions, parked sync,
   graceful drain, deterministic netchaos, and the outcome invariant —
   every accepted connection ends in exactly one of
   served/shed/timed-out/disconnected, and the counters reconcile. *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Gio = Cr_graph.Gio
module Generators = Cr_graph.Generators
module Guard = Cr_guard
module Daemon = Cr_daemon.Daemon
module Server = Cr_daemon.Server
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let mk_graph ?(n = 48) seed =
  let rng = Rng.create seed in
  let g = Generators.erdos_renyi rng ~n ~avg_degree:4.0 in
  Graph.reweight g (fun _ _ _ -> 1.0 +. float_of_int (Rng.int rng 7))

let params = Params.scaled ~k:3 ()

(* mirrors test_daemon: a random mutation applicable to the current
   graph, and a [count]-step script each step of which applies to the
   graph the previous steps produce *)
let random_mutation rng g =
  let n = Graph.n g in
  let es = Array.of_list (Graph.edges g) in
  let w () = 1.0 +. float_of_int (Rng.int rng 7) in
  match Rng.int rng 5 with
  | 0 when Array.length es > 0 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Set_weight (u, v, w ())
  | 1 when Array.length es > 1 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Link_down (u, v)
  | 2 ->
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Graph.has_edge g u v) then Graph.Link_up (u, v, w ())
      else Graph.Node_up (Rng.int rng n)
  | 3 -> Graph.Node_down (Rng.int rng n)
  | _ -> Graph.Node_up (Rng.int rng n)

let script g seed count =
  let rng = Rng.create (1000 + seed) in
  let rec go acc g k =
    if k = 0 then List.rev acc
    else
      let mu = random_mutation rng g in
      match Graph.apply g mu with
      | g' -> go (mu :: acc) g' (k - 1)
      | exception Invalid_argument _ -> go acc g k
  in
  go [] g count

let feed1 d line =
  match Daemon.handle d line with [ r ] -> r | rs -> String.concat "|" rs

let answers d pairs =
  List.concat_map
    (fun (u, v) ->
      [
        feed1 d (Printf.sprintf "dist %d %d" u v);
        feed1 d (Printf.sprintf "route %d %d" u v);
        feed1 d (Printf.sprintf "path %d %d" u v);
      ])
    pairs

let strip_epoch r =
  match String.rindex_opt r ' ' with Some i -> String.sub r 0 i | None -> r

let in_temp_dir f =
  let dir = Filename.temp_file "crsrv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let wait_for ?(timeout_s = 5.0) f =
  let rec go n =
    if f () then true
    else if n <= 0 then false
    else begin
      Unix.sleepf 0.002;
      go (n - 1)
    end
  in
  go (int_of_float (timeout_s /. 0.002))

(* ------------------------------------------------------------------ *)
(* Harness: a daemon + server on a unix socket in [dir], the event loop
   in its own domain, torn down by [shutdown] (graceful drain). *)

type h = { sock : string; d : Daemon.t; srv : Server.t; dom : unit Domain.t }

let start ?(config = Server.default_config) ?journal ?snapshot_dir ?repair_hook
    ?(seed = 11) dir =
  let g = mk_graph seed in
  let d =
    Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ?journal
      ?snapshot_dir ?repair_hook ~params g
  in
  let sock = Filename.concat dir "crt.sock" in
  let srv = Server.create ~config d (Server.Unix_path sock) in
  let dom = Domain.spawn (fun () -> Server.run srv) in
  { sock; d; srv; dom }

let shutdown h =
  Server.stop h.srv;
  Domain.join h.dom;
  Daemon.close h.d

(* raw-fd clients: blocking with a receive deadline, so a misbehaving
   server fails the test loudly instead of hanging it *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let send fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

(* one response line, newline stripped; "" on EOF before any byte *)
let recv_line fd =
  let buf = Buffer.create 64 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
        if Bytes.get b 0 = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
  in
  go ()

let ask fd line =
  send fd (line ^ "\n");
  recv_line fd

(* everything until EOF (resets count as EOF: the bytes are gone) *)
let recv_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reconciles st =
  st.Server.conns_total
  = st.Server.served + st.Server.shed + st.Server.timed_out + st.Server.disconnected

(* ------------------------------------------------------------------ *)
(* Addresses and netchaos parsing *)

let test_addr_parsing () =
  (match Server.addr_of_string "7070" with
  | Ok (Server.Tcp ("127.0.0.1", 7070)) -> ()
  | _ -> Alcotest.fail "bare port should be 127.0.0.1:PORT");
  (match Server.addr_of_string "0.0.0.0:8080" with
  | Ok (Server.Tcp ("0.0.0.0", 8080)) -> ()
  | _ -> Alcotest.fail "HOST:PORT should parse");
  (match Server.addr_of_string "unix:/tmp/x.sock" with
  | Ok (Server.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix:PATH should parse");
  (match Server.addr_of_string "not-a-port" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  (match Server.addr_of_string "host:" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty port must not parse");
  checks "unix round-trip" "unix:/tmp/x.sock"
    (Server.addr_to_string (Server.Unix_path "/tmp/x.sock"));
  checks "tcp round-trip" "10.0.0.1:99" (Server.addr_to_string (Server.Tcp ("10.0.0.1", 99)));
  List.iter
    (fun p ->
      match Server.netchaos_of_string ~seed:1 p with
      | Ok nc -> checks "preset label" p (Server.netchaos_label nc)
      | Error e -> Alcotest.failf "preset %s: %s" p e)
    [ "none"; "slow"; "torn"; "rude"; "net" ];
  match Server.netchaos_of_string ~seed:1 "bogus" with
  | Error e -> checkb "error names the presets" true (contains e "bogus")
  | Ok _ -> Alcotest.fail "unknown preset must not parse"

(* ------------------------------------------------------------------ *)
(* Byte-identity: with netchaos off, a scripted socket session produces
   exactly the bytes the stdin transport (Daemon.handle) produces. *)

let session_script =
  [
    "route 1 2";
    "dist 2 3";
    "# a comment the daemon must skip";
    "";
    "path 0 5";
    "linkup 1 2 3";
    "sync";
    "dist 1 2";
    "definitely-not-a-command";
    "help";
    "quit";
  ]

let test_socket_byte_identity () =
  in_temp_dir (fun dir ->
      (* reference run: same graph, same lines, straight through
         Daemon.handle — this is what `crt daemon` on stdin emits *)
      let dref =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params (mk_graph 11)
      in
      let expect =
        String.concat ""
          (List.concat_map
             (fun l -> List.map (fun r -> r ^ "\n") (Daemon.handle dref l))
             session_script)
      in
      Daemon.close dref;
      let h = start dir in
      let got =
        Fun.protect
          ~finally:(fun () -> shutdown h)
          (fun () ->
            let fd = connect h.sock in
            send fd (String.concat "\n" session_script ^ "\n");
            let got = recv_all fd in
            close_quiet fd;
            got)
      in
      checks "socket transport is byte-identical to the stdin transport" expect got;
      let st = Server.stats h.srv in
      checki "one connection, served" 1 st.Server.served;
      checkb "counters reconcile" true (reconciles st))

(* ------------------------------------------------------------------ *)
(* Hostile clients *)

let test_half_line_then_disconnect () =
  in_temp_dir (fun dir ->
      let h = start dir in
      Fun.protect
        ~finally:(fun () -> shutdown h)
        (fun () ->
          let fd = connect h.sock in
          let r = ask fd "route 1 2" in
          checkb "served before the rudeness" true (contains r "ok route");
          (* die mid-line: bytes but no newline, then vanish *)
          send fd "route 3";
          close_quiet fd;
          checkb "server notices the torn input" true
            (wait_for (fun () -> (Server.stats h.srv).Server.disconnected = 1));
          let st = Server.stats h.srv in
          checki "torn counted" 1 st.Server.torn;
          checki "only the complete line was handled" 1 st.Server.lines;
          (* the daemon and new clients are untouched *)
          let fd2 = connect h.sock in
          let r = ask fd2 "route 1 2" in
          checkb "next client served" true (contains r "ok route");
          send fd2 "quit\n";
          ignore (recv_all fd2);
          close_quiet fd2));
  ()

let test_oversized_line () =
  in_temp_dir (fun dir ->
      let config = { Server.default_config with Server.max_line = 64 } in
      let h = start ~config dir in
      Fun.protect
        ~finally:(fun () -> shutdown h)
        (fun () ->
          let fd = connect h.sock in
          let r = ask fd "route 1 2" in
          checkb "normal line fine" true (contains r "ok route");
          send fd (String.make 500 'x');
          let rest = recv_all fd in
          close_quiet fd;
          checkb
            (Printf.sprintf "structured err before close: %s" rest)
            true
            (contains rest "err line 2 too long max=64"));
      let st = Server.stats h.srv in
      checki "oversize counted" 1 st.Server.oversized;
      checki "connection ended disconnected" 1 st.Server.disconnected;
      checkb "counters reconcile" true (reconciles st))

let test_err_busy_shedding () =
  in_temp_dir (fun dir ->
      let config = { Server.default_config with Server.max_conns = 1 } in
      let h = start ~config dir in
      Fun.protect
        ~finally:(fun () -> shutdown h)
        (fun () ->
          let fd1 = connect h.sock in
          (* a full round-trip proves fd1 is registered before fd2 knocks *)
          let r = ask fd1 "route 1 2" in
          checkb "first client served" true (contains r "ok route");
          let fd2 = connect h.sock in
          let refusal = recv_all fd2 in
          close_quiet fd2;
          checkb
            (Printf.sprintf "second client shed with a structured line: %s" refusal)
            true
            (contains refusal "err busy conns=1 max=1");
          (* the shed never disturbed the admitted session *)
          let r = ask fd1 "dist 2 3" in
          checkb "first client still served" true (contains r "ok dist");
          send fd1 "quit\n";
          ignore (recv_all fd1);
          close_quiet fd1);
      let st = Server.stats h.srv in
      checki "shed counted" 1 st.Server.shed;
      checki "served counted" 1 st.Server.served;
      checkb "counters reconcile" true (reconciles st))

let test_idle_timeout () =
  in_temp_dir (fun dir ->
      let config = { Server.default_config with Server.idle_timeout_s = 0.1 } in
      let h = start ~config dir in
      Fun.protect
        ~finally:(fun () -> shutdown h)
        (fun () ->
          let fd = connect h.sock in
          let r = ask fd "route 1 2" in
          checkb "served while active" true (contains r "ok route");
          (* now go quiet: the slow-loris defense must evict us *)
          let r = recv_line fd in
          checkb (Printf.sprintf "idle deadline fired: %s" r) true (contains r "err idle");
          close_quiet fd);
      let st = Server.stats h.srv in
      checki "idle eviction is a timeout" 1 st.Server.timed_out;
      checkb "counters reconcile" true (reconciles st))

let test_interleaved_sessions_independent_linenos () =
  in_temp_dir (fun dir ->
      let h = start dir in
      Fun.protect
        ~finally:(fun () -> shutdown h)
        (fun () ->
          let fd1 = connect h.sock and fd2 = connect h.sock in
          let r = ask fd1 "route 1 2" in
          checkb "fd1 line 1" true (contains r "ok route");
          (* fd2's first bad line is *its* line 1, not a shared counter *)
          let r = ask fd2 "bogus" in
          checkb (Printf.sprintf "fd2 errors at line 1: %s" r) true (contains r "err line 1");
          let r = ask fd1 "bogus" in
          checkb (Printf.sprintf "fd1 errors at line 2: %s" r) true (contains r "err line 2");
          let r = ask fd2 "bogus" in
          checkb (Printf.sprintf "fd2 errors at line 2: %s" r) true (contains r "err line 2");
          List.iter
            (fun fd ->
              send fd "quit\n";
              ignore (recv_all fd);
              close_quiet fd)
            [ fd1; fd2 ]));
  ()

(* ------------------------------------------------------------------ *)
(* Parked sync: one client waiting on repair must not stall the loop *)

let test_parked_sync_does_not_block_others () =
  in_temp_dir (fun dir ->
      let h = start ~repair_hook:(fun () -> Unix.sleepf 0.5) dir in
      Fun.protect
        ~finally:(fun () -> shutdown h)
        (fun () ->
          let u, v, _ = List.hd (Graph.edges (mk_graph 11)) in
          let fda = connect h.sock and fdb = connect h.sock in
          let r = ask fda (Printf.sprintf "linkdown %d %d" u v) in
          checkb "mutation acked" true (contains r "ok mutate");
          (* fda parks on sync (repair takes >= 0.5s); fdb must be
             served immediately in the meantime *)
          send fda "sync\n";
          let t0 = Unix.gettimeofday () in
          let r = ask fdb "route 1 2" in
          let dt = Unix.gettimeofday () -. t0 in
          checkb "other client served" true (contains r "ok route");
          checkb
            (Printf.sprintf "served while sync parked (%.3fs)" dt)
            true (dt < 0.3);
          let r = recv_line fda in
          checkb (Printf.sprintf "parked sync resolves: %s" r) true
            (contains r "ok sync epoch=1 backlog=0");
          List.iter
            (fun fd ->
              send fd "quit\n";
              ignore (recv_all fd);
              close_quiet fd)
            [ fda; fdb ]))

(* ------------------------------------------------------------------ *)
(* Drain *)

let test_drain_deadline_expires_on_stuck_reader () =
  in_temp_dir (fun dir ->
      (* every response is held 10 s before any byte moves — a stand-in
         for a reader whose socket never drains; the drain deadline
         (0.1 s) must force-close it rather than wait *)
      let nc = Server.netchaos ~label:"stuck" ~seed:3 ~delay_rate:1.0 ~delay_s:10.0 () in
      let config = { Server.default_config with Server.nc; Server.drain_s = 0.1 } in
      let h = start ~config dir in
      let fd = connect h.sock in
      send fd "route 1 2\n";
      checkb "request reached the daemon" true
        (wait_for (fun () -> (Server.stats h.srv).Server.lines = 1));
      let t0 = Unix.gettimeofday () in
      Server.stop h.srv;
      Domain.join h.dom;
      let dt = Unix.gettimeofday () -. t0 in
      Daemon.close h.d;
      close_quiet fd;
      checkb (Printf.sprintf "drain returned promptly (%.3fs)" dt) true (dt < 5.0);
      let st = Server.stats h.srv in
      checkb "drain ran" true st.Server.drained;
      checki "stuck connection force-closed as timed-out" 1 st.Server.timed_out;
      checkb "counters reconcile" true (reconciles st))

let test_graceful_drain_flushes_in_flight () =
  in_temp_dir (fun dir ->
      let h = start dir in
      let fd = connect h.sock in
      let r = ask fd "route 1 2" in
      checkb "served" true (contains r "ok route");
      (* stop while the client is connected but idle: drain must close
         it cleanly as served, not shoot it *)
      Server.stop h.srv;
      Domain.join h.dom;
      Daemon.close h.d;
      checks "clean EOF after drain" "" (recv_all fd);
      close_quiet fd;
      let st = Server.stats h.srv in
      checkb "drain ran" true st.Server.drained;
      checki "idle connection closed served" 1 st.Server.served;
      checkb "counters reconcile" true (reconciles st))

(* ------------------------------------------------------------------ *)
(* Netchaos storm: concurrent clients under delays, short writes and
   injected cuts.  The server must never crash, and the outcome
   taxonomy must reconcile exactly. *)

let storm_client sock cid =
  let rng = Rng.create (900 + cid) in
  try
    let fd = connect sock in
    Fun.protect
      ~finally:(fun () -> close_quiet fd)
      (fun () ->
        let eof = ref false in
        for _ = 1 to 12 do
          if not !eof then begin
            let u = Rng.int rng 48 and v = Rng.int rng 48 in
            send fd (Printf.sprintf "route %d %d\n" u v);
            (* under netchaos the server may cut us mid-response *)
            if recv_line fd = "" then eof := true
          end
        done;
        if not !eof then
          if cid = 3 then send fd "route 1" (* rude: half a line, then hang up *)
          else begin
            send fd "quit\n";
            ignore (recv_all fd)
          end)
  with
  | Unix.Unix_error _ -> ()
  | End_of_file -> ()

let test_netchaos_storm_reconciles () =
  in_temp_dir (fun dir ->
      let nc =
        match Server.netchaos_of_string ~seed:42 "net" with
        | Ok nc -> nc
        | Error e -> Alcotest.fail e
      in
      let config = { Server.default_config with Server.nc } in
      let h = start ~config dir in
      let clients = List.init 4 (fun cid -> Domain.spawn (fun () -> storm_client h.sock cid)) in
      List.iter Domain.join clients;
      (* the daemon survived the storm: it still answers *)
      let r = List.hd (Daemon.handle h.d "route 0 1") in
      checkb "daemon alive after the storm" true (contains r "ok route");
      shutdown h;
      let st = Server.stats h.srv in
      checkb "all four clients accepted" true (st.Server.conns_total >= 4);
      checkb "chaos actually fired" true
        (st.Server.chaos_delays + st.Server.chaos_shorts + st.Server.chaos_drops > 0);
      checkb
        (Printf.sprintf "every connection ended in exactly one outcome (%s)"
           (Server.stats_json h.srv))
        true (reconciles st);
      match Cr_util.Jsonl.validate (Server.stats_json h.srv) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "stats json invalid: %s" e)

(* determinism: the same seed and session replays the same injected
   faults — chaos counters are identical across runs *)
let test_netchaos_deterministic_replay () =
  let run () =
    in_temp_dir (fun dir ->
        let nc =
          Server.netchaos ~label:"det" ~seed:7 ~delay_rate:0.3 ~delay_s:0.005
            ~short_rate:0.5 ()
        in
        let config = { Server.default_config with Server.nc } in
        let h = start ~config dir in
        Fun.protect
          ~finally:(fun () -> shutdown h)
          (fun () ->
            let fd = connect h.sock in
            for q = 0 to 19 do
              ignore (ask fd (Printf.sprintf "route %d %d" (q mod 7) (7 + (q mod 9))))
            done;
            send fd "quit\n";
            ignore (recv_all fd);
            close_quiet fd);
        let st = Server.stats h.srv in
        (st.Server.chaos_delays, st.Server.chaos_shorts, st.Server.chaos_drops))
  in
  let ((da, sa, ka) as a) = run () in
  let ((db, sb, kb) as b) = run () in
  checkb
    (Printf.sprintf "identical injected faults across runs: %d/%d/%d vs %d/%d/%d" da sa
       ka db sb kb)
    true (a = b);
  checkb "chaos actually fired" true (da + sa + ka > 0)

(* ------------------------------------------------------------------ *)
(* Recovery: after socket churn and a drain, --recover answers exactly
   like a daemon that never went down, over the acked prefix. *)

let test_post_drain_recover_byte_identity () =
  in_temp_dir (fun dir ->
      let jpath = Filename.concat dir "journal.log" in
      let snaps = Filename.concat dir "snaps" in
      Unix.mkdir snaps 0o755;
      let g0 = mk_graph 11 in
      let mus = script g0 313 8 in
      let h = start ~journal:jpath ~snapshot_dir:snaps dir in
      (* churn over the socket; every mutation must come back acked,
         and acked means journaled — it must survive the drain *)
      let acked = ref [] in
      let fd = connect h.sock in
      List.iter
        (fun mu ->
          let r = ask fd (Graph.mutation_to_string mu) in
          checkb (Printf.sprintf "mutation acked: %s" r) true (contains r "ok mutate");
          acked := mu :: !acked)
        mus;
      let r = ask fd "sync" in
      checkb "synced over the socket" true (contains r "ok sync");
      send fd "quit\n";
      ignore (recv_all fd);
      close_quiet fd;
      shutdown h;
      (* the daemon that never went down *)
      let never =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params g0
      in
      List.iter
        (fun mu -> ignore (Daemon.handle never (Graph.mutation_to_string mu)))
        (List.rev !acked);
      (match Daemon.sync never with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "never-crashed sync: %s" e);
      (* the daemon recovered from what the drained server persisted *)
      let recovered =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~journal:jpath
          ~snapshot_dir:snaps ~recover:true ~params g0
      in
      checkb "recovery info present" true (Daemon.recovery recovered <> None);
      let expected = Graph.apply_all g0 (List.rev !acked) in
      checks "recovered live graph = the acked prefix" (Gio.to_string expected)
        (Gio.to_string (Daemon.live_graph recovered));
      let rng = Rng.create 313 in
      let pairs = List.init 24 (fun _ -> (Rng.int rng 48, Rng.int rng 48)) in
      let a = List.map strip_epoch (answers recovered pairs)
      and b = List.map strip_epoch (answers never pairs) in
      Daemon.close recovered;
      Daemon.close never;
      List.iter2 (fun x y -> checks "recovered answer = never-crashed answer" y x) a b)

let () =
  Alcotest.run "server"
    [
      ( "surface",
        [
          Alcotest.test_case "addresses and netchaos parse" `Quick test_addr_parsing;
          Alcotest.test_case "socket session byte-identical to stdin" `Quick
            test_socket_byte_identity;
        ] );
      ( "hostile clients",
        [
          Alcotest.test_case "half line then disconnect is torn, not fatal" `Quick
            test_half_line_then_disconnect;
          Alcotest.test_case "oversized line gets a structured refusal" `Quick
            test_oversized_line;
          Alcotest.test_case "admission cap sheds with err busy" `Quick
            test_err_busy_shedding;
          Alcotest.test_case "idle connections are evicted" `Quick test_idle_timeout;
          Alcotest.test_case "interleaved sessions number lines independently" `Quick
            test_interleaved_sessions_independent_linenos;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "parked sync never blocks other clients" `Quick
            test_parked_sync_does_not_block_others;
        ] );
      ( "drain",
        [
          Alcotest.test_case "graceful drain flushes in-flight work" `Quick
            test_graceful_drain_flushes_in_flight;
          Alcotest.test_case "drain deadline force-closes a stuck reader" `Quick
            test_drain_deadline_expires_on_stuck_reader;
        ] );
      ( "netchaos",
        [
          Alcotest.test_case "4-client storm reconciles outcomes" `Quick
            test_netchaos_storm_reconciles;
          Alcotest.test_case "fault injection replays deterministically" `Quick
            test_netchaos_deterministic_replay;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "post-drain recover answers byte-identically" `Quick
            test_post_drain_recover_byte_identity;
        ] );
    ]
