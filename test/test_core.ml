(* Tests for the compact_routing core: parameters, storage accounting,
   the simulator referee, the sparse/dense decomposition (Definitions 1-2,
   Lemma 2), and the full AGM06 scheme (Theorem 1). *)

module Rng = Cr_util.Rng
module Bits = Cr_util.Bits
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Ball = Cr_graph.Ball
module Generators = Cr_graph.Generators
module Landmarks = Cr_landmark.Landmarks
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let prepared_graph ?(n = 120) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  let g = Graph.normalize g in
  Apsp.compute g

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_presets () =
  let s = Params.scaled ~k:3 () in
  let p = Params.paper ~k:3 () in
  checki "scaled cap n=512" 64 (Params.landmark_cap s ~n:512);
  checki "paper cap clamps to n" 512 (Params.landmark_cap p ~n:512);
  checki "sigma 512 k=3" 8 (Params.sigma s ~n:512);
  checki "sigma 1024 k=2" 32 (Params.sigma (Params.scaled ~k:2 ()) ~n:1024);
  Params.validate s;
  Params.validate p;
  checkb "k=0 invalid" true
    (try Params.validate { s with Params.k = 0 }; false with Invalid_argument _ -> true)

let test_params_cap_monotone_in_n () =
  let p = Params.scaled ~k:3 () in
  let last = ref 0 in
  List.iter
    (fun n ->
      let c = Params.landmark_cap p ~n in
      checkb "monotone" true (c >= !last);
      last := c)
    [ 64; 128; 256; 512; 1024 ]

(* ------------------------------------------------------------------ *)
(* Storage *)

let test_storage_accounting () =
  let s = Storage.create ~n:4 in
  Storage.add s ~node:0 ~category:"a" ~bits:10;
  Storage.add s ~node:0 ~category:"b" ~bits:5;
  Storage.add s ~node:1 ~category:"a" ~bits:7;
  checki "node 0" 15 (Storage.node_bits s 0);
  checki "node 1" 7 (Storage.node_bits s 1);
  checki "node 2" 0 (Storage.node_bits s 2);
  checki "max" 15 (Storage.max_node_bits s);
  checkf "mean" 5.5 (Storage.mean_node_bits s);
  checki "total" 22 (Storage.total_bits s);
  Alcotest.(check (list (pair string int))) "categories" [ ("a", 17); ("b", 5) ] (Storage.categories s);
  Alcotest.(check (list (pair string int))) "node categories" [ ("a", 10); ("b", 5) ]
    (Storage.node_categories s 0);
  checkb "negative rejected" true
    (try Storage.add s ~node:0 ~category:"a" ~bits:(-1); false with Invalid_argument _ -> true)

let test_storage_merge () =
  let a = Storage.create ~n:3 and b = Storage.create ~n:3 in
  Storage.add a ~node:0 ~category:"x" ~bits:4;
  Storage.add b ~node:0 ~category:"x" ~bits:6;
  Storage.add b ~node:2 ~category:"y" ~bits:1;
  Storage.merge_into ~dst:a b;
  checki "merged node 0" 10 (Storage.node_bits a 0);
  checki "merged node 2" 1 (Storage.node_bits a 2);
  let c = Storage.create ~n:2 in
  checkb "size mismatch" true
    (try Storage.merge_into ~dst:a c; false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Simulator *)

let line_graph () = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]

let dummy_scheme g walk_fn =
  {
    Scheme.name = "dummy";
    graph = g;
    storage = Storage.create ~n:(Graph.n g);
    header_bits = Scheme.default_header_bits ~n:(Graph.n g);
    route = (fun ?trace:_ s d -> let w, ok = walk_fn s d in { Scheme.walk = w; delivered = ok; phases_used = 1 });
  }

let test_simulator_walk_cost () =
  let g = line_graph () in
  let c, h = Simulator.walk_cost g [ 0; 1; 2; 3 ] in
  checkf "cost" 3.0 c;
  checki "hops" 3 h;
  let c1, h1 = Simulator.walk_cost g [ 2 ] in
  checkf "single cost" 0.0 c1;
  checki "single hops" 0 h1;
  checkb "non-edge rejected" true
    (try ignore (Simulator.walk_cost g [ 0; 2 ]); false with Simulator.Invalid_walk _ -> true);
  checkb "empty rejected" true
    (try ignore (Simulator.walk_cost g []); false with Simulator.Invalid_walk _ -> true)

let test_simulator_measure () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  (* honest scheme walking 0-1-2-1-2-3 *)
  let sch = dummy_scheme g (fun _ _ -> ([ 0; 1; 2; 1; 2; 3 ], true)) in
  let m = Simulator.measure apsp sch 0 3 in
  checkb "delivered" true m.Simulator.delivered;
  checkf "cost" 5.0 m.Simulator.cost;
  checkf "stretch" (5.0 /. 3.0) m.Simulator.stretch;
  (* lying scheme: claims delivery but ends elsewhere *)
  let liar = dummy_scheme g (fun _ _ -> ([ 0; 1 ], true)) in
  checkb "liar caught" true
    (try ignore (Simulator.measure apsp liar 0 3); false with Simulator.Invalid_walk _ -> true);
  (* wrong start *)
  let drifter = dummy_scheme g (fun _ _ -> ([ 1; 2; 3 ], true)) in
  checkb "wrong start caught" true
    (try ignore (Simulator.measure apsp drifter 0 3); false with Simulator.Invalid_walk _ -> true);
  (* honest failure: walk back home *)
  let failer = dummy_scheme g (fun s _ -> ([ s; 1; s ], false)) in
  let mf = Simulator.measure apsp failer 0 3 in
  checkb "undelivered ok" true (not mf.Simulator.delivered);
  checkb "stretch infinite" true (mf.Simulator.stretch = infinity)

let test_simulator_evaluate () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch =
    dummy_scheme g (fun s d ->
        (* route along the line *)
        let step = if d > s then 1 else -1 in
        let rec go x acc = if x = d then List.rev (x :: acc) else go (x + step) (x :: acc) in
        (go s [], true))
  in
  let pairs = [| (0, 3); (3, 0); (1, 2) |] in
  let agg = Simulator.evaluate apsp sch pairs in
  checki "pairs" 3 agg.Simulator.pairs;
  checki "delivered" 3 agg.Simulator.delivered;
  checkf "stretch 1" 1.0 agg.Simulator.stretch_stats.Cr_util.Stats.mean

let test_simulator_sample_pairs () =
  let apsp = prepared_graph 5 in
  let rng = Rng.create 9 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  checki "count" 100 (Array.length pairs);
  Array.iter
    (fun (s, d) ->
      checkb "distinct" true (s <> d);
      checkb "connected" true (Apsp.distance apsp s d < infinity))
    pairs

let test_simulator_sample_pairs_shortfall () =
  (* 64 nodes, one single edge: connected ordered pairs are so rare that
     the rejection-sampling guard expires.  The shortfall must surface as
     Sample_shortfall, never as a quietly truncated sample. *)
  let g = Graph.create ~n:64 [ (0, 1, 1.0) ] in
  let apsp = Apsp.compute g in
  (match Simulator.sample_pairs (Rng.create 1) apsp ~count:100 with
  | exception Simulator.Sample_shortfall { requested; found } ->
      checki "requested" 100 requested;
      checkb "found fewer" true (found < 100)
  | pairs -> Alcotest.failf "expected Sample_shortfall, got %d pairs" (Array.length pairs));
  (* opting in to a short sample returns only valid pairs *)
  let short = Simulator.sample_pairs ~allow_short:true (Rng.create 1) apsp ~count:100 in
  checkb "short" true (Array.length short < 100);
  Array.iter
    (fun (s, d) ->
      checkb "valid pair" true (s <> d && Apsp.distance apsp s d < infinity))
    short

let test_simulator_check_walk_outcomes () =
  let g = line_graph () in
  let ck = Simulator.check_walk g in
  checkb "delivered" true
    ((ck ~src:0 ~dst:3 ~delivered:true [ 0; 1; 2; 3 ]).Simulator.outcome = Simulator.Delivered);
  checkb "no-route" true
    ((ck ~src:0 ~dst:3 ~delivered:false [ 0; 1; 0 ]).Simulator.outcome = Simulator.No_route);
  let is_invalid walk ~delivered =
    match (ck ~src:0 ~dst:3 ~delivered walk).Simulator.outcome with
    | Simulator.Invalid_hop _ -> true
    | _ -> false
  in
  checkb "empty" true (is_invalid [] ~delivered:false);
  checkb "wrong start" true (is_invalid [ 1; 2; 3 ] ~delivered:true);
  checkb "non-edge" true (is_invalid [ 0; 2; 3 ] ~delivered:true);
  checkb "out of range" true (is_invalid [ 0; 1; 9 ] ~delivered:false);
  checkb "liar" true (is_invalid [ 0; 1 ] ~delivered:true);
  (* valid-prefix pricing: cost covers hops before the defect *)
  let c = ck ~src:0 ~dst:3 ~delivered:true [ 0; 1; 2; 0 ] in
  checkf "prefix cost" 2.0 c.Simulator.checked_cost;
  checki "prefix hops" 2 c.Simulator.checked_hops

(* ------------------------------------------------------------------ *)
(* Decomposition *)

let test_decomposition_ranges_monotone () =
  let apsp = prepared_graph 11 in
  let d = Decomposition.build apsp ~k:3 in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    checki "a(u,0)=0" 0 (Decomposition.range d u 0);
    for i = 0 to 2 do
      checkb "nondecreasing" true (Decomposition.range d u (i + 1) >= Decomposition.range d u i);
      checkb "bounded by log delta" true (Decomposition.range d u (i + 1) <= Decomposition.log_delta d)
    done
  done

let test_decomposition_growth () =
  (* when a(u,i+1) < log_delta, |A(u,i+1)| >= kappa * |B(u, 2^{a(u,i)})| and
     the radius is minimal *)
  let apsp = prepared_graph 13 in
  let k = 3 in
  let d = Decomposition.build apsp ~k in
  let n = Graph.n (Apsp.graph apsp) in
  let kappa = float_of_int (Bits.ceil_pow (float_of_int n) (1.0 /. float_of_int k)) in
  for u = 0 to n - 1 do
    let ball = Apsp.ball apsp u in
    for i = 0 to k - 1 do
      let a_i = Decomposition.range d u i and a_i1 = Decomposition.range d u (i + 1) in
      let base = Ball.ball_size ball (Decomposition.radius_of_exponent a_i) in
      if a_i1 < Decomposition.log_delta d then begin
        let sz = Ball.ball_size ball (Decomposition.radius_of_exponent a_i1) in
        checkb "grew by kappa" true (float_of_int sz >= kappa *. float_of_int base);
        (* minimality *)
        if a_i1 > 1 then begin
          let prev = Ball.ball_size ball (Decomposition.radius_of_exponent (a_i1 - 1)) in
          checkb "minimal exponent" true (float_of_int prev < kappa *. float_of_int base)
        end
      end
    done
  done

let test_decomposition_density_definition () =
  let apsp = prepared_graph 17 in
  let d = Decomposition.build apsp ~k:3 in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    for i = 0 to 2 do
      let a_i = Decomposition.range d u i and a_i1 = Decomposition.range d u (i + 1) in
      let expect = a_i < a_i1 && a_i1 <= a_i + 3 in
      checkb "definition 2" true (Decomposition.is_dense d u i = expect)
    done
  done

let test_decomposition_r_set () =
  let apsp = prepared_graph 19 in
  let d = Decomposition.build apsp ~k:3 in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    let l = Decomposition.range_set d u in
    let r = Decomposition.extended_range_set d u in
    (* R(u) = exactly { i : exists a in L(u), -1 <= a - i <= 4 } *)
    for i = 0 to Decomposition.log_delta d do
      let expect = List.exists (fun a -> a - i >= -1 && a - i <= 4) l in
      checkb "R membership" true (List.mem i r = expect);
      checkb "level graph consistent" true (Decomposition.in_level_graph d u i = List.mem i r)
    done;
    (* |R(u)| <= 6 |L(u)| = O(k) *)
    checkb "R size O(k)" true (List.length r <= 6 * List.length l)
  done

let test_decomposition_lemma2 () =
  (* Lemma 2: if i dense for u and v in F(u,i) then a(u,i) in R(v) *)
  let apsp = prepared_graph 23 in
  let k = 3 in
  let d = Decomposition.build apsp ~k in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    for i = 0 to k - 1 do
      if Decomposition.is_dense d u i then begin
        let j = Decomposition.range d u i in
        Array.iter
          (fun v ->
            checkb
              (Printf.sprintf "lemma2 u=%d i=%d v=%d" u i v)
              true
              (List.mem j (Decomposition.extended_range_set d v)))
          (Decomposition.f_set d u i)
      end
    done
  done

let test_decomposition_neighborhoods () =
  let apsp = prepared_graph 29 in
  let d = Decomposition.build apsp ~k:2 in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to min 20 (n - 1) do
    Alcotest.(check (array int)) "A(u,0)" [| u |] (Decomposition.neighborhood d u 0);
    let a1 = Decomposition.neighborhood d u 1 in
    checkb "A(u,1) contains u" true (Array.exists (fun x -> x = u) a1);
    checki "size consistent" (Array.length a1) (Decomposition.neighborhood_size d u 1);
    (* F(u,i) is a subset of A(u,i) *)
    let f1 = Decomposition.f_set d u 1 in
    let in_a1 = Hashtbl.create 16 in
    Array.iter (fun x -> Hashtbl.replace in_a1 x ()) a1;
    Array.iter (fun x -> checkb "F inside A" true (Hashtbl.mem in_a1 x)) f1
  done

let test_decomposition_level_nodes () =
  let apsp = prepared_graph 31 in
  let d = Decomposition.build apsp ~k:3 in
  let n = Graph.n (Apsp.graph apsp) in
  List.iter
    (fun i ->
      let members = Decomposition.level_nodes d i in
      checkb "nonempty" true (Array.length members > 0);
      Array.iter (fun u -> checkb "membership consistent" true (Decomposition.in_level_graph d u i)) members)
    (Decomposition.needed_levels d);
  (* every node appears in at least one level *)
  for u = 0 to n - 1 do
    checkb "node in some level" true (Decomposition.extended_range_set d u <> [])
  done

let test_decomposition_dense_count_logarithmic () =
  (* the paper's observation: nodes have O(log n) dense levels; here
     the count is trivially <= k, but check it is well-defined *)
  let apsp = prepared_graph 37 in
  let d = Decomposition.build apsp ~k:4 in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    let c = Decomposition.dense_level_count d u in
    checkb "in range" true (c >= 0 && c <= 4)
  done

let test_decomposition_k1 () =
  let apsp = prepared_graph 41 in
  let d = Decomposition.build apsp ~k:1 in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    checki "a(u,0)" 0 (Decomposition.range d u 0);
    checkb "a(u,1) defined" true (Decomposition.range d u 1 >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Agm06 *)

let build_agm ?(n = 100) ?(k = 3) ?(mode = Agm06.Full) seed =
  let apsp = prepared_graph ~n seed in
  let agm = Agm06.build ~params:(Params.scaled ~k ~seed ()) ~mode apsp in
  (apsp, agm)

let test_agm06_delivers_everything () =
  let apsp, agm = build_agm 43 in
  let sch = Agm06.scheme agm in
  let n = Graph.n (Apsp.graph apsp) in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if (s + d) mod 7 = 0 then begin
        let m = Simulator.measure apsp sch s d in
        checkb (Printf.sprintf "delivered %d->%d" s d) true m.Simulator.delivered
      end
    done
  done

let test_agm06_self_route () =
  let apsp, agm = build_agm 47 in
  let sch = Agm06.scheme agm in
  let m = Simulator.measure apsp sch 5 5 in
  checkb "self delivered" true m.Simulator.delivered;
  checkf "zero cost" 0.0 m.Simulator.cost

let test_agm06_stretch_linear_in_k () =
  (* Theorem 1 shape: measured stretch should stay within a generous
     linear envelope c*k (c = 8 here) rather than the exponential regime *)
  let apsp = prepared_graph ~n:150 53 in
  let rng = Rng.create 99 in
  let pairs = Simulator.sample_pairs rng apsp ~count:400 in
  List.iter
    (fun k ->
      let agm = Agm06.build ~params:(Params.scaled ~k ()) apsp in
      let agg = Simulator.evaluate apsp (Agm06.scheme agm) pairs in
      checki "all delivered" (Array.length pairs) agg.Simulator.delivered;
      let limit = 8.0 *. float_of_int (max 2 k) in
      checkb
        (Printf.sprintf "k=%d mean stretch %.2f <= %.2f" k agg.Simulator.stretch_stats.Cr_util.Stats.mean limit)
        true
        (agg.Simulator.stretch_stats.Cr_util.Stats.mean <= limit))
    [ 1; 2; 3; 4 ]

let test_agm06_walks_are_valid () =
  (* Simulator.measure already validates; this asserts non-delivery never
     happens and walks end at the destination *)
  let apsp, agm = build_agm ~n:80 59 in
  let sch = Agm06.scheme agm in
  let rng = Rng.create 1 in
  let pairs = Simulator.sample_pairs rng apsp ~count:200 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb "delivered" true m.Simulator.delivered;
      checkb "cost at least distance" true (m.Simulator.cost >= Apsp.distance apsp s d -. 1e-9))
    pairs

let test_agm06_name_independence () =
  (* relabeling nodes must not break routing: same topology, adversarial
     fresh names *)
  let rng = Rng.create 61 in
  let g0 = Generators.two_tier_isp rng ~core:6 ~access_per_core:8 in
  let g = Graph.normalize (Graph.relabel rng g0) in
  let apsp = Apsp.compute g in
  let agm = Agm06.build ~params:(Params.scaled ~k:3 ()) apsp in
  let sch = Agm06.scheme agm in
  let pairs = Simulator.sample_pairs rng apsp ~count:150 in
  Array.iter
    (fun (s, d) ->
      checkb "delivered" true (Simulator.measure apsp sch s d).Simulator.delivered)
    pairs

let test_agm06_stats_consistency () =
  let apsp, agm = build_agm ~n:60 67 in
  let sch = Agm06.scheme agm in
  let rng = Rng.create 2 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  ignore (Simulator.evaluate apsp sch pairs);
  let st = Agm06.stats agm in
  checki "routes counted" 100 st.Agm06.routes;
  checki "delivered + failed = routes" 100 (st.Agm06.delivered + st.Agm06.failed);
  let phase_sum = Array.fold_left ( + ) 0 st.Agm06.phase_found in
  checki "phase sum = delivered" st.Agm06.delivered phase_sum

let test_agm06_storage_positive_everywhere () =
  let apsp, agm = build_agm ~n:90 71 in
  let sch = Agm06.scheme agm in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    checkb "node stores something" true (Storage.node_bits sch.Scheme.storage u > 0)
  done;
  (* categories present *)
  let cats = List.map fst (Storage.categories sch.Scheme.storage) in
  List.iter
    (fun c -> checkb (c ^ " present") true (List.mem c cats))
    [ "local"; "sparse-trees"; "fallback" ]

let test_agm06_paper_constants_small () =
  (* with paper constants on a small graph, everything is within the caps
     and the scheme still delivers *)
  let apsp = prepared_graph ~n:60 73 in
  let agm = Agm06.build ~params:(Params.paper ~k:2 ()) apsp in
  let sch = Agm06.scheme agm in
  let rng = Rng.create 3 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  let agg = Simulator.evaluate apsp sch pairs in
  checki "all delivered" 100 agg.Simulator.delivered

let test_agm06_modes () =
  let apsp = prepared_graph ~n:80 79 in
  let rng = Rng.create 4 in
  let pairs = Simulator.sample_pairs rng apsp ~count:120 in
  List.iter
    (fun mode ->
      let agm = Agm06.build ~params:(Params.scaled ~k:3 ()) ~mode apsp in
      let agg = Simulator.evaluate apsp (Agm06.scheme agm) pairs in
      (* ablations may fail some pairs at intermediate phases but the
         global phase still guarantees delivery *)
      checki "delivered under ablation" (Array.length pairs) agg.Simulator.delivered)
    [ Agm06.Full; Agm06.Sparse_only; Agm06.Dense_only ]

let test_agm06_k1_degenerate () =
  let apsp = prepared_graph ~n:50 83 in
  let agm = Agm06.build ~params:(Params.scaled ~k:1 ()) apsp in
  let sch = Agm06.scheme agm in
  let rng = Rng.create 5 in
  let pairs = Simulator.sample_pairs rng apsp ~count:80 in
  let agg = Simulator.evaluate apsp sch pairs in
  checki "k=1 delivers" 80 agg.Simulator.delivered

let test_agm06_requires_normalized () =
  let g = Graph.create ~n:3 [ (0, 1, 0.25); (1, 2, 0.5) ] in
  let apsp = Apsp.compute g in
  checkb "unnormalized rejected" true
    (try ignore (Agm06.build apsp); false with Invalid_argument _ -> true)

let test_agm06_high_aspect_ratio () =
  (* dumbbell with a 2^20 bridge: huge aspect ratio, still works *)
  let g = Generators.dumbbell ~n_side:12 ~bridge_weight:(2.0 ** 20.0) in
  let rng = Rng.create 89 in
  let g = Graph.normalize (Graph.relabel rng g) in
  let apsp = Apsp.compute g in
  let agm = Agm06.build ~params:(Params.scaled ~k:3 ()) apsp in
  let sch = Agm06.scheme agm in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then begin
        let m = Simulator.measure apsp sch s d in
        checkb "delivered across bridge" true m.Simulator.delivered
      end
    done
  done

let test_agm06_deterministic () =
  let apsp = prepared_graph ~n:70 97 in
  let build () = Agm06.build ~params:(Params.scaled ~k:3 ~seed:7 ()) apsp in
  let a = Agm06.scheme (build ()) and b = Agm06.scheme (build ()) in
  let rng = Rng.create 6 in
  let pairs = Simulator.sample_pairs rng apsp ~count:60 in
  Array.iter
    (fun (s, d) ->
      let ra = a.Scheme.route s d and rb = b.Scheme.route s d in
      Alcotest.(check (list int)) "same walk" ra.Scheme.walk rb.Scheme.walk)
    pairs

let test_agm06_phase_plans_match_decomposition () =
  let apsp, agm = build_agm ~n:100 ~k:3 131 in
  let decomp = Agm06.decomposition agm in
  let n = Graph.n (Apsp.graph apsp) in
  for u = 0 to n - 1 do
    for i = 0 to 2 do
      match Agm06.phase_plan agm u i with
      | `Dense (level, root) ->
          checkb "dense plan on dense level" true (Decomposition.is_dense decomp u i);
          checki "dense level is a(u,i)" (Decomposition.range decomp u i) level;
          checkb "root valid" true (root >= 0 && root < n)
      | `Sparse (center, bound) ->
          checkb "sparse plan on sparse level" true (not (Decomposition.is_dense decomp u i));
          checkb "bound in range" true (bound >= 1 && bound <= 3);
          (* the center lies inside A(u,i) (or is u itself at level 0) *)
          if i = 0 then checki "level-0 center is u" u center
          else begin
            let a = Decomposition.neighborhood decomp u i in
            checkb "center inside A(u,i)" true (Array.exists (fun x -> x = center) a)
          end
    done
  done

let test_agm06_lemma8_dense_coverage () =
  (* Lemma 8: if i is dense for u, then F(u,i) = B(u, 2^{a(u,i)-1}) is
     fully contained in u's home cluster W(u,i) at level a(u,i) — the
     deterministic guarantee that dense phases deliver *)
  let apsp, agm = build_agm ~n:120 ~k:3 139 in
  let decomp = Agm06.decomposition agm in
  let n = Graph.n (Apsp.graph apsp) in
  let checked = ref 0 in
  for u = 0 to n - 1 do
    for i = 0 to 2 do
      if Decomposition.is_dense decomp u i then begin
        match Agm06.phase_plan agm u i with
        | `Dense (_, _) ->
            (* verify by routing: every v in F(u,i) must be found no later
               than phase i+1 when starting from u *)
            Array.iter
              (fun v ->
                if v <> u then begin
                  incr checked;
                  let r = (Agm06.scheme agm).Scheme.route u v in
                  checkb
                    (Printf.sprintf "lemma8 u=%d i=%d v=%d found by phase %d" u i v (i + 1))
                    true
                    (r.Scheme.delivered && r.Scheme.phases_used <= i + 1)
                end)
              (Decomposition.f_set decomp u i)
        | `Sparse _ -> Alcotest.fail "dense level must get a dense plan"
      end
    done
  done;
  checkb "exercised some dense coverage" true (!checked > 50)

let test_agm06_cost_never_below_distance () =
  let apsp, agm = build_agm ~n:90 ~k:3 149 in
  let sch = Agm06.scheme agm in
  let rng = Rng.create 151 in
  let pairs = Simulator.sample_pairs rng apsp ~count:200 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb "walk cost >= shortest distance" true
        (m.Simulator.cost >= Apsp.distance apsp s d -. 1e-9))
    pairs

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_agm06_describe_node () =
  let _, agm = build_agm ~n:60 ~k:2 137 in
  let s = Agm06.describe_node agm 5 in
  checkb "mentions node" true (contains_substring s "node 5");
  checkb "mentions storage" true (contains_substring s "total");
  checkb "mentions global root" true (contains_substring s "global root")

(* ------------------------------------------------------------------ *)
(* Distance_oracle (Thorup-Zwick [30]) *)

let test_oracle_exact_for_k1 () =
  let apsp = prepared_graph ~n:60 211 in
  let oracle = Distance_oracle.build ~k:1 apsp in
  for u = 0 to 59 do
    for v = 0 to 59 do
      checkb "k=1 exact" true
        (Float.abs (Distance_oracle.query oracle u v -. Apsp.distance apsp u v) < 1e-9)
    done
  done

let test_oracle_stretch_bound () =
  let apsp = prepared_graph ~n:120 223 in
  List.iter
    (fun k ->
      let oracle = Distance_oracle.build ~k apsp in
      let bound = Distance_oracle.stretch_bound oracle in
      for u = 0 to 119 do
        for v = 0 to 119 do
          if u <> v then begin
            let est = Distance_oracle.query oracle u v in
            let true_d = Apsp.distance apsp u v in
            checkb "never underestimates" true (est >= true_d -. 1e-9);
            checkb
              (Printf.sprintf "k=%d stretch %.2f <= %.0f" k (est /. true_d) bound)
              true
              (est <= (bound *. true_d) +. 1e-9)
          end
        done
      done)
    [ 2; 3; 4 ]

let test_oracle_self_and_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1.0); (2, 3, 2.0) ] in
  let apsp = Apsp.compute g in
  let oracle = Distance_oracle.build ~k:2 apsp in
  checkf "self" 0.0 (Distance_oracle.query oracle 1 1);
  checkb "disconnected" true (Distance_oracle.query oracle 0 3 = infinity)

let test_oracle_size_sublinear_per_node () =
  (* expected bunch size O(k n^{1/k}): entries/n should grow slowly *)
  let a = prepared_graph ~n:100 227 in
  let b = prepared_graph ~n:400 227 in
  let oa = Distance_oracle.build ~k:2 a and ob = Distance_oracle.build ~k:2 b in
  let per_a = float_of_int (Distance_oracle.size_entries oa) /. 100.0 in
  let per_b = float_of_int (Distance_oracle.size_entries ob) /. 400.0 in
  (* n grew 4x; sqrt shape predicts ~2x; allow 3x *)
  checkb (Printf.sprintf "bunch growth %.2fx" (per_b /. per_a)) true (per_b /. per_a < 3.0);
  checkb "storage positive" true (Distance_oracle.storage_bits oa > 0)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"agm06 delivers on random graphs" ~count:8
      (pair (int_range 0 500) (int_range 30 80))
      (fun (seed, n) ->
        let apsp = prepared_graph ~n seed in
        let agm = Agm06.build ~params:(Params.scaled ~k:3 ~seed ()) apsp in
        let sch = Agm06.scheme agm in
        let rng = Rng.create (seed + 1) in
        let pairs = Simulator.sample_pairs rng apsp ~count:40 in
        Array.for_all (fun (s, d) -> (Simulator.measure apsp sch s d).Simulator.delivered) pairs);
    Test.make ~name:"distance oracle estimate within [d, (2k-1)d]" ~count:10
      (pair (int_range 0 500) (int_range 1 4))
      (fun (seed, k) ->
        let apsp = prepared_graph ~n:60 seed in
        let o = Distance_oracle.build ~k ~seed apsp in
        let bound = Distance_oracle.stretch_bound o in
        let ok = ref true in
        for u = 0 to 59 do
          for v = u + 1 to 59 do
            let d = Apsp.distance apsp u v in
            let e = Distance_oracle.query o u v in
            if d = infinity then (if e <> infinity then ok := false)
            else if e < d -. 1e-9 || e > (bound *. d) +. 1e-9 then ok := false
          done
        done;
        !ok);
    Test.make ~name:"distance oracle query is symmetric" ~count:10
      (pair (int_range 0 500) (int_range 1 4))
      (fun (seed, k) ->
        let apsp = prepared_graph ~n:50 seed in
        let o = Distance_oracle.build ~k ~seed apsp in
        let ok = ref true in
        for u = 0 to 49 do
          for v = 0 to 49 do
            (* exact equality: both directions run the canonical walk *)
            if Distance_oracle.query o u v <> Distance_oracle.query o v u then ok := false
          done
        done;
        !ok);
    Test.make ~name:"distance oracle build is deterministic per seed" ~count:8
      (pair (int_range 0 500) (int_range 1 4))
      (fun (seed, k) ->
        let apsp = prepared_graph ~n:40 seed in
        let a = Distance_oracle.build ~k ~seed apsp in
        let b = Distance_oracle.build ~k ~seed apsp in
        let ok = ref true in
        if Distance_oracle.size_entries a <> Distance_oracle.size_entries b then ok := false;
        for u = 0 to 39 do
          for v = 0 to 39 do
            if Distance_oracle.query a u v <> Distance_oracle.query b u v then ok := false
          done
        done;
        !ok);
    Test.make ~name:"decomposition ranges valid on random graphs" ~count:15
      (pair (int_range 0 500) (int_range 2 4))
      (fun (seed, k) ->
        let apsp = prepared_graph ~n:60 seed in
        let d = Decomposition.build apsp ~k in
        let ok = ref true in
        for u = 0 to 59 do
          if Decomposition.range d u 0 <> 0 then ok := false;
          for i = 0 to k - 1 do
            if Decomposition.range d u (i + 1) < Decomposition.range d u i then ok := false
          done
        done;
        !ok);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "core"
    [
      ( "params",
        [
          Alcotest.test_case "presets" `Quick test_params_presets;
          Alcotest.test_case "cap monotone" `Quick test_params_cap_monotone_in_n;
        ] );
      ( "storage",
        [
          Alcotest.test_case "accounting" `Quick test_storage_accounting;
          Alcotest.test_case "merge" `Quick test_storage_merge;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "walk cost" `Quick test_simulator_walk_cost;
          Alcotest.test_case "measure" `Quick test_simulator_measure;
          Alcotest.test_case "evaluate" `Quick test_simulator_evaluate;
          Alcotest.test_case "sample pairs" `Quick test_simulator_sample_pairs;
          Alcotest.test_case "sample pairs shortfall" `Quick test_simulator_sample_pairs_shortfall;
          Alcotest.test_case "check walk outcomes" `Quick test_simulator_check_walk_outcomes;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "ranges monotone" `Quick test_decomposition_ranges_monotone;
          Alcotest.test_case "growth condition" `Quick test_decomposition_growth;
          Alcotest.test_case "density definition" `Quick test_decomposition_density_definition;
          Alcotest.test_case "R set" `Quick test_decomposition_r_set;
          Alcotest.test_case "lemma 2" `Quick test_decomposition_lemma2;
          Alcotest.test_case "neighborhoods" `Quick test_decomposition_neighborhoods;
          Alcotest.test_case "level nodes" `Quick test_decomposition_level_nodes;
          Alcotest.test_case "dense count" `Quick test_decomposition_dense_count_logarithmic;
          Alcotest.test_case "k=1" `Quick test_decomposition_k1;
        ] );
      ( "agm06",
        [
          Alcotest.test_case "delivers everything" `Quick test_agm06_delivers_everything;
          Alcotest.test_case "self route" `Quick test_agm06_self_route;
          Alcotest.test_case "stretch linear in k" `Slow test_agm06_stretch_linear_in_k;
          Alcotest.test_case "walks valid" `Quick test_agm06_walks_are_valid;
          Alcotest.test_case "name independence" `Quick test_agm06_name_independence;
          Alcotest.test_case "stats consistency" `Quick test_agm06_stats_consistency;
          Alcotest.test_case "storage positive" `Quick test_agm06_storage_positive_everywhere;
          Alcotest.test_case "paper constants" `Quick test_agm06_paper_constants_small;
          Alcotest.test_case "ablation modes" `Quick test_agm06_modes;
          Alcotest.test_case "k=1 degenerate" `Quick test_agm06_k1_degenerate;
          Alcotest.test_case "requires normalized" `Quick test_agm06_requires_normalized;
          Alcotest.test_case "high aspect ratio" `Quick test_agm06_high_aspect_ratio;
          Alcotest.test_case "deterministic" `Quick test_agm06_deterministic;
          Alcotest.test_case "phase plans match decomposition" `Quick test_agm06_phase_plans_match_decomposition;
          Alcotest.test_case "describe node" `Quick test_agm06_describe_node;
          Alcotest.test_case "lemma 8 dense coverage" `Quick test_agm06_lemma8_dense_coverage;
          Alcotest.test_case "cost >= distance" `Quick test_agm06_cost_never_below_distance;
        ] );
      ( "distance_oracle",
        [
          Alcotest.test_case "k=1 exact" `Quick test_oracle_exact_for_k1;
          Alcotest.test_case "stretch bound 2k-1" `Quick test_oracle_stretch_bound;
          Alcotest.test_case "self and disconnected" `Quick test_oracle_self_and_disconnected;
          Alcotest.test_case "size sublinear" `Quick test_oracle_size_sublinear_per_node;
        ] );
      ("properties", qsuite);
    ]
