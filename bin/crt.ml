(* crt — compact-routing toolbox.

   Subcommands:
     generate    write a synthetic workload graph to a file
     info        print a graph's basic metrics
     decompose   show the sparse/dense decomposition of a node
     covers      build a sparse cover and report its Lemma 6 numbers
     route       route one message with a chosen scheme, printing the walk
     eval        compare schemes on sampled pairs (one table)
     tables      dump one node's AGM06 routing table
     resilience  fault-injection degradation sweep: delivery ratio,
                 stretch-of-delivered, retries and kill reasons per
                 (scheme, failure rate) cell, plus JSON lines
     serve       closed-loop load generator over the batch query
                 engine: routes/sec, latency percentiles, cache
                 hit rates and guard outcomes per scheme, plus JSON
                 lines; --guards/--chaos select presets
     oracle      serve distance/path oracle queries (the second query
                 surface) through the same guarded engine, refereeing
                 every reported walk against the graph; reports the
                 TZ path oracle and the AGH sparse oracle side by
                 side, as a table plus JSON lines
     chaos       chaos grid: serve the same workload under every
                 (chaos preset x guard preset) pair and tally the
                 guard verdicts per cell, as a table plus JSON lines
     trace       route one message with the trace sink attached and
                 print the hop-by-hop event narration (phase entered,
                 tree-search steps, delivery), as a table or JSON lines
     build       construct a scheme and report per-stage build
                 profiling (seconds and table bits per stage)
*)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Gio = Cr_graph.Gio
module Cover = Cr_cover.Sparse_cover
module T = Cr_util.Ascii_table
open Compact_routing
open Cmdliner

(* ---------- shared arguments ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (constructions are deterministic given the seed).")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Space-stretch trade-off parameter (k >= 1).")

let workload_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "er"; n ] -> Ok (Experiment.Erdos_renyi { n = int_of_string n; avg_degree = 4.0 })
    | [ "er"; n; d ] ->
        Ok (Experiment.Erdos_renyi { n = int_of_string n; avg_degree = float_of_string d })
    | [ "geo"; n ] -> Ok (Experiment.Geometric { n = int_of_string n; radius = 0.15 })
    | [ "geo"; n; r ] -> Ok (Experiment.Geometric { n = int_of_string n; radius = float_of_string r })
    | [ "grid"; r; c ] -> Ok (Experiment.Grid { rows = int_of_string r; cols = int_of_string c })
    | [ "ring"; n; ch ] -> Ok (Experiment.Ring_chords { n = int_of_string n; chords = int_of_string ch })
    | [ "isp"; core; acc ] ->
        Ok (Experiment.Isp { core = int_of_string core; access_per_core = int_of_string acc })
    | [ "tree"; n ] -> Ok (Experiment.Tree_w { n = int_of_string n })
    | [ "pref"; n; m ] ->
        Ok (Experiment.Preferential { n = int_of_string n; edges_per_node = int_of_string m })
    | [ "pl"; n ] -> Ok (Experiment.Power_law { n = int_of_string n; exponent = 2.5 })
    | [ "pl"; n; gamma ] ->
        Ok (Experiment.Power_law { n = int_of_string n; exponent = float_of_string gamma })
    | [ "expline"; n; base ] ->
        Ok (Experiment.Exp_line { n = int_of_string n; base = float_of_string base })
    | [ "chain"; sigma; levels ] ->
        Ok (Experiment.Chain { sigma = int_of_string sigma; levels = int_of_string levels; spacing = 8.0 })
    | _ -> Error (`Msg (Printf.sprintf "unknown workload %S (try er:256, geo:256:0.15, grid:16:16, ring:256:64, isp:12:20, tree:256, pref:256:2, pl:256:2.5, expline:96:2.0, chain:4:3)" s))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt (Experiment.workload_name w))

let workload_arg =
  Arg.(
    value
    & opt workload_conv (Experiment.Erdos_renyi { n = 256; avg_degree = 4.0 })
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"Synthetic workload: er:N[:DEG], geo:N[:RADIUS], grid:R:C, ring:N:CHORDS, isp:CORE:ACC, tree:N, pref:N:M, pl:N[:GAMMA], expline:N:BASE, chain:SIGMA:LEVELS.")

let graph_file_arg =
  Arg.(value & opt (some string) None & info [ "g"; "graph" ] ~docv:"FILE" ~doc:"Load the graph from FILE instead of generating a workload.")

let aspect_arg =
  Arg.(value & opt (some float) None & info [ "aspect" ] ~docv:"A" ~doc:"Stretch edge weights to approach aspect ratio A (power of two recommended).")

let load_graph ~seed ~graph_file ~workload ~aspect =
  match graph_file with
  | Some path -> (
      try Graph.normalize (Gio.load path) with
      | Gio.Parse_error (line, reason) ->
          Printf.eprintf "crt: %s: line %d: %s\n" path line reason;
          exit 1
      | Sys_error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 1)
  | None -> (
      match aspect with
      | None -> Experiment.make_graph ~seed workload
      | Some a -> Experiment.make_graph_with_aspect ~seed ~target_aspect:a workload)

(* Long-running subcommands (daemon, serve, chaos) write JSONL
   incrementally; on SIGINT/SIGTERM every open writer is flushed before
   exiting so the artifacts on disk always end at a line boundary —
   the invariant the CI strict-JSON gate checks. *)
let install_signal_handlers () =
  let exit_on signal code =
    try Sys.set_signal signal (Sys.Signal_handle (fun _ ->
        Cr_util.Jsonl.flush_all_writers ();
        exit code))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  exit_on Sys.sigint 130;
  exit_on Sys.sigterm 143

let sample_pairs_exn ~seed apsp ~count =
  try Experiment.default_pairs ~seed apsp ~count
  with Compact_routing.Simulator.Sample_shortfall { requested; found } ->
    Printf.eprintf
      "crt: only %d of %d requested connected pairs exist; is the graph disconnected? (lower --pairs or use a connected workload)\n"
      found requested;
    exit 1

(* ---------- generate ---------- *)

let generate_cmd =
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT" ~doc:"Output path.") in
  let run seed workload aspect out =
    let g = load_graph ~seed ~graph_file:None ~workload ~aspect in
    Gio.save g out;
    Printf.printf "wrote %s: n=%d m=%d\n" out (Graph.n g) (Graph.m g)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic workload graph.")
    Term.(const run $ seed_arg $ workload_arg $ aspect_arg $ out)

(* ---------- info ---------- *)

let info_cmd =
  let run seed workload graph_file aspect =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute g in
    Printf.printf "nodes       %d\nedges       %d\nmax degree  %d\nconnected   %b\ndiameter    %.4g\naspect Δ    %.4g\nmin weight  %.4g\nmax weight  %.4g\n"
      (Graph.n g) (Graph.m g) (Graph.max_degree g) (Apsp.connected apsp) (Apsp.diameter apsp)
      (Apsp.aspect_ratio apsp) (Graph.min_weight g) (Graph.max_weight g)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print basic metrics of a graph.")
    Term.(const run $ seed_arg $ workload_arg $ graph_file_arg $ aspect_arg)

(* ---------- decompose ---------- *)

let decompose_cmd =
  let node = Arg.(value & opt int 0 & info [ "node" ] ~docv:"U" ~doc:"Node index to decompose.") in
  let run seed k workload graph_file aspect u =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute g in
    let d = Decomposition.build apsp ~k in
    Printf.printf "log2 Δ = %d\n" (Decomposition.log_delta d);
    Printf.printf "node %d: L(u) = {%s}, R(u) = {%s}, dense levels = %d\n" u
      (String.concat "," (List.map string_of_int (Decomposition.range_set d u)))
      (String.concat "," (List.map string_of_int (Decomposition.extended_range_set d u)))
      (Decomposition.dense_level_count d u);
    for i = 0 to k - 1 do
      Printf.printf "  level %d: a=%d |A|=%d %s\n" i
        (Decomposition.range d u i)
        (Decomposition.neighborhood_size d u i)
        (if Decomposition.is_dense d u i then "dense" else "sparse")
    done;
    Printf.printf "  level %d: a=%d |A|=%d (top)\n" k (Decomposition.range d u k)
      (Decomposition.neighborhood_size d u k)
  in
  Cmd.v (Cmd.info "decompose" ~doc:"Show the sparse/dense decomposition of a node.")
    Term.(const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ node)

(* ---------- covers ---------- *)

let covers_cmd =
  let rho = Arg.(value & opt float 2.0 & info [ "rho" ] ~docv:"RHO" ~doc:"Ball radius parameter.") in
  let run seed k workload graph_file aspect rho =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let cover = Cover.build ~k ~rho g in
    let n = Graph.n g in
    let kappa = Cr_util.Bits.ceil_pow (float_of_int n) (1.0 /. float_of_int k) in
    Printf.printf "TC(k=%d, rho=%.2f): %d clusters\n" k rho (Array.length (Cover.clusters cover));
    Printf.printf "  cover property      %b\n" (Cover.check_cover cover);
    Printf.printf "  max overlap         %d (paper bound 2k n^{1/k} = %d)\n" (Cover.max_overlap cover) (2 * k * kappa);
    Printf.printf "  max tree radius     %.3f (bound (2k-1)rho = %.3f)\n" (Cover.max_radius cover)
      (float_of_int ((2 * k) - 1) *. rho);
    Printf.printf "  max tree edge       %.3f (bound 2rho = %.3f)\n" (Cover.max_tree_edge cover) (2.0 *. rho)
  in
  Cmd.v (Cmd.info "covers" ~doc:"Build a sparse cover and check its Lemma 6 properties.")
    Term.(const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ rho)

(* ---------- scheme roster ---------- *)

let scheme_names = [ "agm06"; "full"; "tree"; "ap"; "exp"; "tz"; "s3"; "rt" ]

let build_scheme apsp ~k ~seed = function
  | "agm06" -> Agm06.scheme (Agm06.build ~params:(Params.scaled ~k ~seed ()) apsp)
  | "agm06-paper" -> Agm06.scheme (Agm06.build ~params:(Params.paper ~k ~seed ()) apsp)
  | "full" -> Baseline_full.build apsp
  | "tree" -> Baseline_tree.build apsp
  | "ap" -> Baseline_ap.build ~k apsp
  | "exp" -> Baseline_exp.build ~k apsp
  | "tz" -> Baseline_tz.build ~k apsp
  | "s3" -> Baseline_s3.build ~seed apsp
  | "rt" -> Cr_oracle.Rt_scheme.make ~k ~seed apsp
  | s -> invalid_arg (Printf.sprintf "unknown scheme %S" s)

let scheme_arg =
  Arg.(value & opt string "agm06" & info [ "scheme" ] ~docv:"S" ~doc:"Scheme: agm06, agm06-paper, full, tree, ap, exp, tz, s3, rt.")

(* ---------- route ---------- *)

let route_cmd =
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"S" ~doc:"Source node index.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"D" ~doc:"Destination node index.") in
  let run seed k workload graph_file aspect scheme src dst =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute g in
    let sch = build_scheme apsp ~k ~seed scheme in
    let m = Simulator.measure apsp sch src dst in
    let r = sch.Scheme.route src dst in
    Printf.printf "%s: %d -> %d (identifier %d)\n" sch.Scheme.name src dst (Graph.name_of g dst);
    Printf.printf "delivered %b, cost %.4g, hops %d, shortest %.4g, stretch %.3f\n" m.Simulator.delivered
      m.Simulator.cost m.Simulator.hops (Apsp.distance apsp src dst) m.Simulator.stretch;
    if m.Simulator.hops <= 64 then
      Printf.printf "walk: %s\n" (String.concat " -> " (List.map string_of_int r.Scheme.walk))
  in
  Cmd.v (Cmd.info "route" ~doc:"Route one message and print the walk.")
    Term.(const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ scheme_arg $ src $ dst)

(* ---------- tables ---------- *)

let tables_cmd =
  let node = Arg.(value & opt int 0 & info [ "node" ] ~docv:"U" ~doc:"Node whose table to dump.") in
  let run seed k workload graph_file aspect u =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute_parallel g in
    let agm = Agm06.build ~params:(Params.scaled ~k ~seed ()) apsp in
    print_string (Agm06.describe_node agm u)
  in
  Cmd.v (Cmd.info "tables" ~doc:"Dump one node's AGM06 routing table.")
    Term.(const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ node)

(* ---------- eval ---------- *)

let eval_cmd =
  let pairs_n = Arg.(value & opt int 1000 & info [ "pairs" ] ~docv:"P" ~doc:"Number of sampled source-destination pairs.") in
  let schemes_arg =
    Arg.(value & opt (list string) scheme_names & info [ "schemes" ] ~docv:"LIST" ~doc:"Comma-separated schemes to compare.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the rows as CSV to FILE.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Also write one JSON line per row to FILE (same field set as the CSV; the format crt resilience and crt serve emit).")
  in
  let run seed k workload graph_file aspect schemes pairs_n csv json =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute_parallel g in
    let pairs = sample_pairs_exn ~seed:(seed + 1) apsp ~count:pairs_n in
    let table =
      T.create
        ~title:(Printf.sprintf "%s, %d pairs, k=%d" (Experiment.workload_name workload) pairs_n k)
        [
          ("scheme", T.Left); ("delivered", T.Right); ("stretch mean", T.Right);
          ("p99", T.Right); ("max", T.Right); ("bits mean", T.Right); ("bits max", T.Right);
          ("header", T.Right);
        ]
    in
    let rows =
      List.map
        (fun name ->
          let sch = build_scheme apsp ~k ~seed name in
          Experiment.run_scheme apsp sch ~pairs)
        schemes
    in
    List.iter
      (fun (r : Experiment.row) ->
        T.add_row table
          [
            r.Experiment.scheme;
            Printf.sprintf "%d/%d" r.Experiment.delivered r.Experiment.pairs;
            T.fmt_float r.Experiment.stretch_mean;
            T.fmt_float r.Experiment.stretch_p99;
            T.fmt_float r.Experiment.stretch_max;
            T.fmt_bits (int_of_float r.Experiment.bits_mean);
            T.fmt_bits r.Experiment.bits_max;
            string_of_int r.Experiment.header_bits;
          ])
      rows;
    T.print table;
    (match csv with
    | Some path ->
        Experiment.write_csv rows path;
        Printf.printf "csv written to %s\n" path
    | None -> ());
    match json with
    | Some path ->
        Experiment.write_jsonl rows path;
        (* oracle storage rows ride along in the same JSONL file: one
           object per line, distinguished by "surface":"oracle" so the
           scheme-row consumers can filter them out *)
        let po = Cr_oracle.Path_oracle.build ~k ~seed apsp in
        let so = Cr_oracle.Sparse_oracle.build ~seed apsp in
        let module J = Cr_util.Jsonl in
        let oracle_lines =
          [
            J.obj
              [
                ("surface", J.str "oracle"); ("oracle", J.str "tz-path"); ("k", J.int k);
                ("size_entries", J.int (Cr_oracle.Path_oracle.size_entries po));
                ("storage_bits", J.int (Cr_oracle.Path_oracle.storage_bits po));
              ];
            J.obj
              [
                ("surface", J.str "oracle"); ("oracle", J.str "agh-sparse");
                ("landmarks", J.int (Cr_oracle.Sparse_oracle.landmark_count so));
                ("size_entries", J.int (Cr_oracle.Sparse_oracle.size_entries so));
                ("storage_bits", J.int (Cr_oracle.Sparse_oracle.storage_bits so));
              ];
          ]
        in
        let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              oracle_lines);
        Printf.printf "json written to %s (+%d oracle storage rows)\n" path (List.length oracle_lines)
    | None -> ()
  in
  Cmd.v (Cmd.info "eval" ~doc:"Compare schemes on sampled pairs.")
    Term.(const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ schemes_arg $ pairs_n $ csv_arg $ json_arg)

(* ---------- resilience ---------- *)

let resilience_cmd =
  let module Sweep = Cr_resilience.Sweep in
  let module Fsim = Cr_resilience.Fsim in
  let pairs_n = Arg.(value & opt int 400 & info [ "pairs" ] ~docv:"P" ~doc:"Number of sampled source-destination pairs.") in
  let schemes_arg =
    Arg.(value & opt (list string) [ "agm06"; "tz"; "tree"; "full" ]
         & info [ "schemes" ] ~docv:"LIST" ~doc:"Comma-separated schemes to sweep.")
  in
  let rate_conv =
    Arg.conv
      ( (fun s ->
          match float_of_string_opt s with
          | Some r when r >= 0.0 && r <= 1.0 -> Ok r
          | Some r -> Error (`Msg (Printf.sprintf "rate %g outside [0, 1]" r))
          | None -> Error (`Msg (Printf.sprintf "invalid rate %S, expected a float in [0, 1]" s))),
        fun fmt r -> Format.fprintf fmt "%g" r )
  in
  let rates_arg =
    Arg.(value & opt (list rate_conv) Sweep.default_rates
         & info [ "rates" ] ~docv:"LIST" ~doc:"Comma-separated failure rates in [0,1].")
  in
  let model_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Sweep.model_of_string s)),
        fun fmt m -> Format.pp_print_string fmt (Sweep.model_to_string m) )
  in
  let model_arg =
    Arg.(value & opt model_conv Sweep.Edges
         & info [ "model" ] ~docv:"M" ~doc:"Fault model: edges (independent edge failure), nodes (fail-stop crashes), targeted (most-traversed edges).")
  in
  let ttl_arg =
    Arg.(value & opt (some int) None & info [ "ttl" ] ~docv:"T" ~doc:"Hop budget per message (default max 256 (16n)).")
  in
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"R" ~doc:"Bounded reroute attempts after a stall (default 0).")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the per-cell JSON lines to FILE instead of stdout.")
  in
  let run seed k workload graph_file aspect schemes pairs_n rates model ttl retries json =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute_parallel g in
    let pairs = sample_pairs_exn ~seed:(seed + 1) apsp ~count:pairs_n in
    let policy = Fsim.default_policy ?ttl ~max_retries:retries g in
    let schemes = List.map (fun name -> build_scheme apsp ~k ~seed name) schemes in
    let cells = Sweep.sweep ~policy ~model ~seed:(seed + 2) ~rates apsp schemes pairs in
    let table =
      T.create
        ~title:
          (Printf.sprintf "%s, %d pairs, k=%d, model=%s, ttl=%d, retries<=%d"
             (Experiment.workload_name workload) (Array.length pairs) k
             (Sweep.model_to_string model) policy.Fsim.ttl policy.Fsim.max_retries)
        [
          ("scheme", T.Left); ("rate", T.Right); ("delivered", T.Right); ("ratio", T.Right);
          ("stretch mean", T.Right); ("p99", T.Right); ("retries", T.Right);
          ("drops", T.Right); ("ttl", T.Right); ("loops", T.Right);
        ]
    in
    let last_scheme = ref "" in
    List.iter
      (fun (c : Sweep.cell) ->
        if !last_scheme <> "" && !last_scheme <> c.Sweep.scheme then T.add_sep table;
        last_scheme := c.Sweep.scheme;
        T.add_row table
          [
            c.Sweep.scheme; Printf.sprintf "%.3g" c.Sweep.rate;
            Printf.sprintf "%d/%d" c.Sweep.delivered c.Sweep.pairs;
            Printf.sprintf "%.3f" (Sweep.delivery_ratio c);
            T.fmt_float c.Sweep.stretch.Cr_util.Stats.mean;
            T.fmt_float c.Sweep.stretch.Cr_util.Stats.p99;
            string_of_int c.Sweep.retries_total; string_of_int c.Sweep.dropped;
            string_of_int c.Sweep.ttl_kills; string_of_int c.Sweep.loops;
          ])
      cells;
    T.print table;
    let lines = List.map Sweep.cell_to_json cells in
    match json with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines);
        Printf.printf "json written to %s\n" path
    | None -> List.iter print_endline lines
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:"Fault-injection sweep: graceful degradation per scheme and failure rate.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ schemes_arg
      $ pairs_n $ rates_arg $ model_arg $ ttl_arg $ retries_arg $ json_arg)

(* ---------- serve ---------- *)

let serve_cmd =
  let module Workload = Cr_engine.Workload in
  let module Serve = Cr_engine.Serve in
  let module Pool = Cr_util.Domain_pool in
  let schemes_arg =
    Arg.(value & opt (list string) [ "agm06" ]
         & info [ "schemes" ] ~docv:"LIST" ~doc:"Comma-separated schemes to serve.")
  in
  let queries_arg =
    Arg.(value & opt int 20000 & info [ "queries" ] ~docv:"Q" ~doc:"Queries per scheme in the closed-loop run.")
  in
  let dist_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Workload.dist_of_string s)),
        fun fmt d -> Format.pp_print_string fmt (Workload.dist_to_string d) )
  in
  let dist_arg =
    Arg.(value & opt dist_conv (Workload.Zipf 1.1)
         & info [ "dist" ] ~docv:"D" ~doc:"Query distribution: uniform, zipf (exponent 1.1) or zipf:S.")
  in
  let domains_arg =
    Arg.(value & opt int (Pool.default_domains ())
         & info [ "domains" ] ~docv:"N" ~doc:"Worker-domain pool width (default min(8, recommended)).")
  in
  let cache_arg =
    Arg.(value & opt int 0 & info [ "cache" ] ~docv:"C" ~doc:"Route-plan cache capacity in entries, per lane (lane mode) or total (shared mode); 0 disables.")
  in
  let cache_mode_arg =
    Arg.(value & opt string "lane"
         & info [ "cache-mode" ] ~docv:"M"
             ~doc:"Cache structure: lane (one LRU per domain), shared (one lock-free table for all domains) or off. Results are bit-identical across modes.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the per-run JSON lines to FILE instead of stdout.")
  in
  let guards_arg =
    Arg.(value & opt string "off"
         & info [ "guards" ] ~docv:"G" ~doc:"Guard preset: off, serving or strict.")
  in
  let chaos_arg =
    Arg.(value & opt string "none"
         & info [ "chaos" ] ~docv:"C" ~doc:"Chaos preset: none, crash, stall, flaky or storm.")
  in
  let budget_arg =
    Arg.(value & opt float 0.25
         & info [ "budget" ] ~docv:"S" ~doc:"Batch deadline budget in seconds for the strict guard preset.")
  in
  let chaos_seed_arg =
    Arg.(value & opt int 42
         & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed of the deterministic fault plans.")
  in
  let run seed k workload graph_file aspect schemes queries dist domains cache cache_mode
      guards chaos budget chaos_seed json =
    if domains < 1 then (
      Printf.eprintf "crt: --domains must be >= 1\n";
      exit 1);
    if cache < 0 then (
      Printf.eprintf "crt: --cache must be >= 0\n";
      exit 1);
    let cache_mode =
      match Cr_engine.Engine.cache_mode_of_string cache_mode with
      | Ok m -> m
      | Error msg ->
          Printf.eprintf "crt: --cache-mode: %s\n" msg;
          exit 2
    in
    if cache_mode = Cr_engine.Engine.Shared && cache = 0 then (
      Printf.eprintf "crt: --cache-mode shared needs --cache > 0\n";
      exit 2);
    let policy =
      match Cr_guard.Policy.preset_of_string ~batch_budget_s:budget guards with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 2
    in
    let chaos =
      match Cr_guard.Chaos.preset_of_string ~seed:chaos_seed chaos with
      | Ok c -> c
      | Error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 2
    in
    install_signal_handlers ();
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute_parallel g in
    let wl_label =
      match graph_file with Some path -> path | None -> Experiment.workload_name workload
    in
    let schemes = List.map (fun name -> build_scheme apsp ~k ~seed name) schemes in
    (* stream each report to disk as it is produced: an interrupted run
       keeps every finished scheme's line intact *)
    let writer = Option.map Cr_util.Jsonl.Writer.create json in
    let reports =
      try
        List.map
          (fun scheme ->
            let r =
              Serve.run ~cache ~cache_mode ~dist ~policy ~chaos ~guard_label:guards ~domains
                ~seed:(seed + 1) ~queries ~workload:wl_label apsp scheme
            in
            Option.iter (fun w -> Cr_util.Jsonl.Writer.write w (Serve.report_to_json r)) writer;
            r)
          schemes
      with Workload.Sample_exhausted ->
        Printf.eprintf
          "crt: could not sample %d connected pairs; is the graph disconnected or tiny?\n"
          queries;
        exit 1
    in
    let table =
      T.create
        ~title:
          (Printf.sprintf
             "%s, %d queries (%s), k=%d, domains=%d, cache=%d (%s), guards=%s, chaos=%s"
             wl_label queries (Workload.dist_to_string dist) k domains cache
             (Cr_engine.Engine.cache_mode_to_string cache_mode) guards
             (Cr_guard.Chaos.label chaos))
        [
          ("scheme", T.Left); ("routes/s", T.Right); ("p50 us", T.Right); ("p95 us", T.Right);
          ("p99 us", T.Right); ("hit rate", T.Right); ("ok", T.Right); ("rejected", T.Right);
          ("delivered", T.Right); ("stretch mean", T.Right); ("p99", T.Right);
        ]
    in
    List.iter
      (fun (r : Serve.report) ->
        T.add_row table
          [
            r.Serve.scheme;
            Printf.sprintf "%.0f" r.Serve.routes_per_sec;
            Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Cr_util.Stats.p50);
            Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Cr_util.Stats.p95);
            Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Cr_util.Stats.p99);
            (if r.Serve.cache_capacity = 0 then "-"
             else Printf.sprintf "%.3f" (Serve.hit_rate r));
            Printf.sprintf "%d/%d" r.Serve.guards.Cr_engine.Engine.ok r.Serve.queries;
            string_of_int (Serve.rejected r);
            Printf.sprintf "%d/%d" r.Serve.delivered r.Serve.guards.Cr_engine.Engine.ok;
            T.fmt_float r.Serve.stretch_mean; T.fmt_float r.Serve.stretch_p99;
          ])
      reports;
    T.print table;
    match writer with
    | Some w ->
        Cr_util.Jsonl.Writer.close w;
        Printf.printf "json written to %s\n" (Cr_util.Jsonl.Writer.path w)
    | None -> List.iter (fun r -> print_endline (Serve.report_to_json r)) reports
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Closed-loop load generator: serve a query workload through the guarded batch engine.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ schemes_arg
      $ queries_arg $ dist_arg $ domains_arg $ cache_arg $ cache_mode_arg $ guards_arg
      $ chaos_arg $ budget_arg $ chaos_seed_arg $ json_arg)

(* ---------- oracle ---------- *)

let oracle_cmd =
  let module Workload = Cr_engine.Workload in
  let module Oserve = Cr_oracle.Oserve in
  let module Po = Cr_oracle.Path_oracle in
  let module So = Cr_oracle.Sparse_oracle in
  let module Pool = Cr_util.Domain_pool in
  let queries_arg =
    Arg.(value & opt int 20000 & info [ "queries" ] ~docv:"Q" ~doc:"Oracle queries in the closed-loop run.")
  in
  let dist_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Workload.dist_of_string s)),
        fun fmt d -> Format.pp_print_string fmt (Workload.dist_to_string d) )
  in
  let dist_arg =
    Arg.(value & opt dist_conv (Workload.Zipf 1.1)
         & info [ "dist" ] ~docv:"D" ~doc:"Query distribution: uniform, zipf (exponent 1.1) or zipf:S.")
  in
  let domains_arg =
    Arg.(value & opt int (Pool.default_domains ())
         & info [ "domains" ] ~docv:"N" ~doc:"Worker-domain pool width (default min(8, recommended)).")
  in
  let cache_arg =
    Arg.(value & opt int 0 & info [ "cache" ] ~docv:"C" ~doc:"Answer cache capacity in entries, per lane (lane mode) or total (shared mode); 0 disables.")
  in
  let cache_mode_arg =
    Arg.(value & opt string "lane"
         & info [ "cache-mode" ] ~docv:"M"
             ~doc:"Cache structure: lane, shared or off. Shared mode keys oracle answers by canonical (min,max) pair, so both directions hit one entry.")
  in
  let guards_arg =
    Arg.(value & opt string "off"
         & info [ "guards" ] ~docv:"G" ~doc:"Guard preset: off, serving or strict.")
  in
  let chaos_arg =
    Arg.(value & opt string "none"
         & info [ "chaos" ] ~docv:"C" ~doc:"Chaos preset: none, crash, stall, flaky or storm.")
  in
  let budget_arg =
    Arg.(value & opt float 0.25
         & info [ "budget" ] ~docv:"S" ~doc:"Batch deadline budget in seconds for the strict guard preset.")
  in
  let chaos_seed_arg =
    Arg.(value & opt int 42
         & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed of the deterministic fault plans.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the per-oracle JSON lines to FILE instead of stdout.")
  in
  let run seed k workload graph_file aspect queries dist domains cache cache_mode guards
      chaos budget chaos_seed json =
    if domains < 1 then (
      Printf.eprintf "crt: --domains must be >= 1\n";
      exit 1);
    if cache < 0 then (
      Printf.eprintf "crt: --cache must be >= 0\n";
      exit 1);
    let cache_mode =
      match Cr_engine.Engine.cache_mode_of_string cache_mode with
      | Ok m -> m
      | Error msg ->
          Printf.eprintf "crt: --cache-mode: %s\n" msg;
          exit 2
    in
    if cache_mode = Cr_engine.Engine.Shared && cache = 0 then (
      Printf.eprintf "crt: --cache-mode shared needs --cache > 0\n";
      exit 2);
    let policy =
      match Cr_guard.Policy.preset_of_string ~batch_budget_s:budget guards with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 2
    in
    let chaos =
      match Cr_guard.Chaos.preset_of_string ~seed:chaos_seed chaos with
      | Ok c -> c
      | Error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 2
    in
    install_signal_handlers ();
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute_parallel g in
    let wl_label =
      match graph_file with Some path -> path | None -> Experiment.workload_name workload
    in
    let oracle = Po.build ~k ~seed apsp in
    let report =
      try
        Oserve.run ~cache ~cache_mode ~dist ~policy ~chaos ~guard_label:guards ~domains
          ~seed:(seed + 1) ~queries ~workload:wl_label apsp oracle
      with Workload.Sample_exhausted ->
        Printf.eprintf
          "crt: could not sample %d connected pairs; is the graph disconnected or tiny?\n" queries;
        exit 1
    in
    (* the AGH sparse oracle is refereed sequentially over a
       deterministic sample: its answers do not go through the engine,
       so the row reports quality and size, not serving throughput *)
    let so = So.build ~seed apsp in
    let spairs = sample_pairs_exn ~seed:(seed + 1) apsp ~count:(min queries 2000) in
    let sp_t0 = Unix.gettimeofday () in
    let sp_ok = ref 0 in
    let sp_sum = ref 0.0 in
    let sp_max = ref 0.0 in
    Array.iter
      (fun (u, v) ->
        match So.path so u v with
        | None -> ()
        | Some (a : So.answer) ->
            let c =
              Simulator.check_walk (Apsp.graph apsp) ~src:u ~dst:v ~delivered:true a.So.walk
            in
            let tol = 1e-9 *. Float.max 1.0 a.So.est in
            if
              Simulator.is_delivered c.Simulator.outcome
              && Float.abs (c.Simulator.checked_cost -. a.So.est) <= tol
            then (
              incr sp_ok;
              let d = Apsp.distance apsp u v in
              let s = if d = 0.0 then 1.0 else a.So.est /. d in
              sp_sum := !sp_sum +. s;
              if s > !sp_max then sp_max := s))
      spairs;
    let sp_wall = Unix.gettimeofday () -. sp_t0 in
    let sp_n = Array.length spairs in
    let sp_mean = if !sp_ok = 0 then 0.0 else !sp_sum /. float_of_int !sp_ok in
    let table =
      T.create
        ~title:
          (Printf.sprintf
             "%s, %d queries (%s), k=%d, domains=%d, cache=%d (%s), guards=%s, chaos=%s"
             wl_label queries (Workload.dist_to_string dist) k domains cache
             (Cr_engine.Engine.cache_mode_to_string cache_mode) guards
             (Cr_guard.Chaos.label chaos))
        [
          ("oracle", T.Left); ("bound", T.Right); ("queries/s", T.Right); ("p95 us", T.Right);
          ("hit rate", T.Right); ("ok", T.Right); ("stretch mean", T.Right); ("max", T.Right);
          ("entries", T.Right); ("bits", T.Right);
        ]
    in
    T.add_row table
      [
        Printf.sprintf "tz-path(k=%d)" k;
        Printf.sprintf "%.0f" (Po.stretch_bound oracle);
        Printf.sprintf "%.0f" report.Oserve.queries_per_sec;
        Printf.sprintf "%.1f" (1e6 *. report.Oserve.latency.Cr_util.Stats.p95);
        (if report.Oserve.cache_capacity = 0 then "-"
         else Printf.sprintf "%.3f" (Oserve.hit_rate report));
        Printf.sprintf "%d/%d" report.Oserve.ok report.Oserve.queries;
        T.fmt_float report.Oserve.stretch_mean;
        T.fmt_float report.Oserve.stretch_max;
        string_of_int report.Oserve.size_entries;
        T.fmt_bits report.Oserve.storage_bits;
      ];
    T.add_row table
      [
        Printf.sprintf "agh-sparse(L=%d)" (So.landmark_count so);
        Printf.sprintf "%.0f" (So.stretch_bound so);
        Printf.sprintf "%.0f" (float_of_int sp_n /. Float.max 1e-9 sp_wall);
        "-";
        "-";
        Printf.sprintf "%d/%d" !sp_ok sp_n;
        T.fmt_float sp_mean;
        T.fmt_float !sp_max;
        string_of_int (So.size_entries so);
        T.fmt_bits (So.storage_bits so);
      ];
    T.print table;
    let module J = Cr_util.Jsonl in
    let sparse_line =
      J.obj
        [
          ("surface", J.str "oracle"); ("oracle", J.str "agh-sparse"); ("workload", J.str wl_label);
          ("landmarks", J.int (So.landmark_count so)); ("pairs", J.int sp_n);
          ("ok", J.int !sp_ok); ("stretch_mean", J.float sp_mean); ("stretch_max", J.float !sp_max);
          ("size_entries", J.int (So.size_entries so)); ("storage_bits", J.int (So.storage_bits so));
        ]
    in
    let lines = [ Oserve.report_to_json report; sparse_line ] in
    match json with
    | Some path ->
        J.write_lines lines path;
        Printf.printf "json written to %s\n" path
    | None -> List.iter print_endline lines
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Serve distance/path oracle queries through the guarded batch engine and referee the reported walks.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ queries_arg
      $ dist_arg $ domains_arg $ cache_arg $ cache_mode_arg $ guards_arg $ chaos_arg
      $ budget_arg $ chaos_seed_arg $ json_arg)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let module Workload = Cr_engine.Workload in
  let module Sweep = Cr_engine.Chaos_sweep in
  let module Pool = Cr_util.Domain_pool in
  let queries_arg =
    Arg.(value & opt int 4000 & info [ "queries" ] ~docv:"Q" ~doc:"Queries per grid cell.")
  in
  let domains_arg =
    Arg.(value & opt int (Pool.default_domains ())
         & info [ "domains" ] ~docv:"N" ~doc:"Worker-domain pool width per cell.")
  in
  let cache_arg =
    Arg.(value & opt int 0 & info [ "cache" ] ~docv:"C" ~doc:"Per-lane LRU route-plan cache capacity in entries (0 disables).")
  in
  let budget_arg =
    Arg.(value & opt float 0.25
         & info [ "budget" ] ~docv:"S" ~doc:"Batch deadline budget in seconds for the strict guard preset.")
  in
  let chaos_seed_arg =
    Arg.(value & opt int 42
         & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed of the deterministic fault plans.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the per-cell JSON lines to FILE instead of stdout.")
  in
  let run seed k workload graph_file aspect scheme queries domains cache budget chaos_seed json =
    if domains < 1 then (
      Printf.eprintf "crt: --domains must be >= 1\n";
      exit 1);
    install_signal_handlers ();
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let apsp = Apsp.compute_parallel g in
    let wl_label =
      match graph_file with Some path -> path | None -> Experiment.workload_name workload
    in
    let sch = build_scheme apsp ~k ~seed scheme in
    let writer = Option.map Cr_util.Jsonl.Writer.create json in
    let on_cell c =
      Option.iter (fun w -> Cr_util.Jsonl.Writer.write w (Sweep.cell_to_json c)) writer
    in
    let cells =
      try
        Sweep.sweep ~cache ~chaos_seed ~batch_budget_s:budget ~on_cell ~domains ~seed:(seed + 1)
          ~queries ~workload:wl_label apsp sch
      with Workload.Sample_exhausted ->
        Printf.eprintf
          "crt: could not sample %d connected pairs; is the graph disconnected or tiny?\n"
          queries;
        exit 1
    in
    let table =
      T.create
        ~title:
          (Printf.sprintf "%s, %s, %d queries/cell, domains=%d, budget=%.3gs, chaos-seed=%d"
             wl_label sch.Scheme.name queries domains budget chaos_seed)
        [
          ("chaos", T.Left); ("guards", T.Left); ("ok", T.Right); ("t/o", T.Right);
          ("shed", T.Right); ("brk", T.Right); ("lost", T.Right); ("retries", T.Right);
          ("requeues", T.Right); ("served", T.Right); ("budget", T.Right); ("wall ms", T.Right);
        ]
    in
    let last_chaos = ref "" in
    List.iter
      (fun (c : Sweep.cell) ->
        if !last_chaos <> "" && !last_chaos <> c.Sweep.chaos then T.add_sep table;
        last_chaos := c.Sweep.chaos;
        T.add_row table
          [
            c.Sweep.chaos; c.Sweep.guards; string_of_int c.Sweep.ok;
            string_of_int c.Sweep.timed_out; string_of_int c.Sweep.shed;
            string_of_int c.Sweep.breaker_open; string_of_int c.Sweep.worker_lost;
            string_of_int c.Sweep.retries; string_of_int c.Sweep.requeues;
            (match Sweep.served_ratio c with
            | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r)
            | None -> "-");
            (if c.Sweep.within_budget then "ok" else "OVER");
            Printf.sprintf "%.1f" (1e3 *. c.Sweep.wall_s);
          ])
      cells;
    T.print table;
    match writer with
    | Some w ->
        Cr_util.Jsonl.Writer.close w;
        Printf.printf "json written to %s\n" (Cr_util.Jsonl.Writer.path w)
    | None -> List.iter (fun c -> print_endline (Sweep.cell_to_json c)) cells
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Chaos grid: sweep chaos presets against guard presets and tally the verdicts.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ scheme_arg
      $ queries_arg $ domains_arg $ cache_arg $ budget_arg $ chaos_seed_arg $ json_arg)

(* ---------- daemon ---------- *)

let daemon_cmd =
  let module Daemon = Cr_daemon.Daemon in
  let module Pool = Cr_util.Domain_pool in
  let guards_arg =
    Arg.(value & opt string "serving"
         & info [ "guards" ] ~docv:"G" ~doc:"Guard preset: off, serving or strict.")
  in
  let chaos_arg =
    Arg.(value & opt string "none"
         & info [ "chaos" ] ~docv:"C" ~doc:"Chaos preset: none, crash, stall, flaky or storm.")
  in
  let budget_arg =
    Arg.(value & opt float 0.25
         & info [ "budget" ] ~docv:"S" ~doc:"Batch deadline budget in seconds for the strict guard preset.")
  in
  let chaos_seed_arg =
    Arg.(value & opt int 42
         & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed of the deterministic fault plans.")
  in
  let staleness_arg =
    Arg.(value & opt int 32
         & info [ "staleness-every" ] ~docv:"N"
             ~doc:"Re-price every Nth answered route against the live post-mutation graph (0 disables).")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Append every accepted mutation to FILE (one per line, flushed), replayable with --replay.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Apply a recorded mutation journal to the graph before serving.")
  in
  let events_arg =
    Arg.(value & opt (some string) None
         & info [ "events" ] ~docv:"FILE" ~doc:"Stream one strict-JSON repair event per line to FILE.")
  in
  let fsync_arg =
    Arg.(value & opt string "every"
         & info [ "fsync" ] ~docv:"POLICY"
             ~doc:"Journal durability: every (fsync per record), batch[:N] (fsync every N records) or off (flush only). ok replies are sent after the record is durable per this policy.")
  in
  let snapshots_arg =
    Arg.(value & opt (some string) None
         & info [ "snapshots" ] ~docv:"DIR"
             ~doc:"Write an atomic snapshot checkpoint to DIR every --snapshot-every journaled mutations (requires --journal).")
  in
  let snapshot_every_arg =
    Arg.(value & opt int 64
         & info [ "snapshot-every" ] ~docv:"N" ~doc:"Checkpoint interval in journaled mutations.")
  in
  let recover_arg =
    Arg.(value & opt (some string) None
         & info [ "recover" ] ~docv:"DIR"
             ~doc:"Recover before serving: load the newest valid snapshot from DIR, replay the valid --journal suffix, truncate any torn tail, and continue journaling in place (requires --journal).")
  in
  let crashpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "crashpoint" ] ~docv:"SITE[:N]"
             ~doc:"Fault injection: SIGKILL self at the Nth hit (default 1st) of SITE — pre-flush, post-flush-pre-ack or mid-snapshot. For crash-recovery testing.")
  in
  let cache_arg =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"C"
             ~doc:"Shared answer-cache capacity in entries (0 disables). Generation-aged by epoch id: every repair invalidates in O(1), so answers never cross epochs.")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve many concurrent clients over a socket instead of stdin/stdout: [HOST:]PORT (TCP, host defaults to 127.0.0.1) or unix:PATH. SIGTERM/SIGINT drain gracefully (stop accepting, flush in-flight responses up to --drain seconds) and exit 143/130.")
  in
  let netchaos_arg =
    Arg.(value & opt string "none"
         & info [ "netchaos" ] ~docv:"P"
             ~doc:"Deterministic network fault injection on the socket transport: none, slow (delayed writes), torn (short writes), rude (mid-request disconnects) or net (all three). Decisions are pure in (connection id, request index) under --chaos-seed, so runs replay.")
  in
  let max_conns_arg =
    Arg.(value & opt int 64
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Connection cap for --listen; clients beyond it are shed with a structured err busy.")
  in
  let max_line_arg =
    Arg.(value & opt int 4096
         & info [ "max-line" ] ~docv:"BYTES"
             ~doc:"Request-line byte bound for --listen; longer lines get err line too long and the connection is closed.")
  in
  let idle_timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "idle-timeout" ] ~docv:"S"
             ~doc:"Per-connection idle/read deadline in seconds for --listen (0 disables).")
  in
  let drain_arg =
    Arg.(value & opt float 5.0
         & info [ "drain" ] ~docv:"S"
             ~doc:"Drain deadline for --listen: how long SIGTERM waits for in-flight responses before force-closing stragglers.")
  in
  let run seed k workload graph_file aspect guards chaos budget chaos_seed staleness journal
      replay events fsync snapshots snapshot_every recover crashpoint cache listen netchaos
      max_conns max_line idle_timeout drain =
    if listen = None then install_signal_handlers ();
    if cache < 0 then (
      Printf.eprintf "crt: --cache must be >= 0\n";
      exit 1);
    at_exit Pool.shutdown_shared;
    let policy =
      match Cr_guard.Policy.preset_of_string ~batch_budget_s:budget guards with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 2
    in
    let chaos =
      match Cr_guard.Chaos.preset_of_string ~seed:chaos_seed chaos with
      | Ok c -> c
      | Error msg ->
          Printf.eprintf "crt: %s\n" msg;
          exit 2
    in
    let fsync =
      match Cr_daemon.Journal.fsync_of_string fsync with
      | Ok f -> f
      | Error msg ->
          Printf.eprintf "crt: --fsync: %s\n" msg;
          exit 2
    in
    (match crashpoint with
    | None -> ()
    | Some spec ->
        let site_s, after =
          match String.index_opt spec ':' with
          | None -> (spec, 1)
          | Some i -> (
              let s = String.sub spec 0 i in
              let n = String.sub spec (i + 1) (String.length spec - i - 1) in
              match int_of_string_opt n with
              | Some n when n >= 1 -> (s, n)
              | _ ->
                  Printf.eprintf "crt: --crashpoint: bad hit count %S\n" n;
                  exit 2)
        in
        (match Cr_daemon.Crashpoint.of_string site_s with
        | Some site -> Cr_daemon.Crashpoint.arm_kill ~after site
        | None ->
            Printf.eprintf "crt: --crashpoint: unknown site %S (try %s)\n" site_s
              (String.concat ", "
                 (List.map Cr_daemon.Crashpoint.to_string Cr_daemon.Crashpoint.all));
            exit 2));
    if (snapshots <> None || recover <> None) && journal = None then begin
      Printf.eprintf "crt: --snapshots/--recover need --journal (checkpoints record a journal offset)\n";
      exit 2
    end;
    (* --recover DIR reads checkpoints from DIR; new ones go to
       --snapshots DIR, defaulting to the same place *)
    let snapshot_dir = match snapshots with Some d -> Some d | None -> recover in
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let g =
      match replay with
      | None -> g
      | Some path -> (
          (* a torn or corrupt trailing record is the expected outcome
             of a crash, not an operator error: replay the valid
             prefix, say exactly what was dropped, and serve *)
          try
            let r = Cr_daemon.Journal.load path in
            (match r.Cr_daemon.Journal.truncation with
            | Some tr ->
                Printf.eprintf
                  "crt: %s: line %d: %s; replaying the %d valid records before it\n" path
                  tr.Cr_daemon.Journal.lineno tr.Cr_daemon.Journal.reason
                  r.Cr_daemon.Journal.read_records
            | None -> ());
            Graph.apply_all g r.Cr_daemon.Journal.mutations
          with
          | Invalid_argument msg | Sys_error msg ->
              Printf.eprintf "crt: replay %s: %s\n" path msg;
              exit 1)
    in
    let d =
      try
        Daemon.create ~policy ~chaos ~staleness_every:staleness ~fsync ?journal ?snapshot_dir
          ~snapshot_every ~recover:(recover <> None) ?events ~cache
          ~params:(Params.scaled ~k ~seed ()) g
      with Invalid_argument msg ->
        Printf.eprintf "crt: %s\n" msg;
        exit 1
    in
    let g = Daemon.live_graph d in
    Printf.printf "ok ready n=%d m=%d k=%d guards=%s chaos=%s\n" (Graph.n g) (Graph.m g) k
      guards (Cr_guard.Chaos.label chaos);
    (match Daemon.recovery d with
    | Some r ->
        Printf.printf "ok recovered snapshot=%s replayed=%d truncated_bytes=%d recovery_ms=%.1f\n"
          (match r.Daemon.snapshot_epoch with Some e -> string_of_int e | None -> "none")
          r.Daemon.replayed r.Daemon.truncated_bytes (1e3 *. r.Daemon.recovery_s)
    | None -> ());
    flush stdout;
    match listen with
    | None ->
        Daemon.serve_loop d stdin stdout;
        Daemon.close d
    | Some addr_s ->
        let module Server = Cr_daemon.Server in
        let address =
          match Server.addr_of_string addr_s with
          | Ok a -> a
          | Error msg ->
              Printf.eprintf "crt: --listen: %s\n" msg;
              exit 2
        in
        let nc =
          match Server.netchaos_of_string ~seed:chaos_seed netchaos with
          | Ok c -> c
          | Error msg ->
              Printf.eprintf "crt: --netchaos: %s\n" msg;
              exit 2
        in
        let config =
          { Server.default_config with
            Server.max_conns; max_line; idle_timeout_s = idle_timeout; drain_s = drain; nc }
        in
        (* drain instead of exiting: the handler only flips a flag, the
           event loop stops accepting, flushes in-flight responses up
           to --drain seconds, and run returns; journal and JSONL
           writers are then closed on the normal path.  Installed
           *before* create — the listening socket is visible to
           clients (and process managers) from the moment it binds, so
           a SIGTERM in that window must already mean drain, not die. *)
        let signaled = ref 0 in
        let srv_ref = ref None in
        let stop_early = ref false in
        let drain_on signal code =
          try
            Sys.set_signal signal
              (Sys.Signal_handle
                 (fun _ ->
                   signaled := code;
                   match !srv_ref with
                   | Some srv -> Server.stop srv
                   | None -> stop_early := true))
          with Invalid_argument _ | Sys_error _ -> ()
        in
        drain_on Sys.sigterm 143;
        drain_on Sys.sigint 130;
        let srv =
          try Server.create ~config d address with
          | Unix.Unix_error (err, _, arg) ->
              Printf.eprintf "crt: --listen %s: %s%s\n" addr_s (Unix.error_message err)
                (if arg = "" then "" else " (" ^ arg ^ ")");
              exit 1
          | Invalid_argument msg ->
              Printf.eprintf "crt: %s\n" msg;
              exit 2
        in
        srv_ref := Some srv;
        if !stop_early then Server.stop srv;
        Printf.printf "ok listening %s max-conns=%d idle-timeout=%gs netchaos=%s\n%!"
          (Server.addr_to_string (Server.addr srv))
          max_conns idle_timeout (Server.netchaos_label nc);
        Server.run srv;
        Daemon.close d;
        Printf.printf "ok drained %s\n%!" (Server.stats_json srv);
        Cr_util.Jsonl.flush_all_writers ();
        if !signaled <> 0 then exit !signaled
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Persistent route daemon: stream route/dist queries and live mutations over stdin/stdout or, with --listen, a fault-tolerant multi-client socket; repair is incremental and never blocks serving, the journal is checksummed and crash-recoverable.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ guards_arg
      $ chaos_arg $ budget_arg $ chaos_seed_arg $ staleness_arg $ journal_arg $ replay_arg
      $ events_arg $ fsync_arg $ snapshots_arg $ snapshot_every_arg $ recover_arg
      $ crashpoint_arg $ cache_arg $ listen_arg $ netchaos_arg $ max_conns_arg $ max_line_arg
      $ idle_timeout_arg $ drain_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let module Trace = Cr_obs.Trace in
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"S" ~doc:"Source node index.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"D" ~doc:"Destination node index.") in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write one strict-JSON event per line to FILE (\"-\" for stdout) instead of the table.")
  in
  let run seed k workload graph_file aspect scheme src dst json =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let n = Graph.n g in
    if src < 0 || src >= n || dst < 0 || dst >= n then (
      Printf.eprintf "crt: --src/--dst must be in [0, %d)\n" n;
      exit 1);
    let apsp = Apsp.compute g in
    let sch = build_scheme apsp ~k ~seed scheme in
    let events = ref [] in
    let r = sch.Scheme.route ~trace:(fun ev -> events := ev :: !events) src dst in
    let events = List.rev !events in
    let cost, hops = Simulator.walk_cost g r.Scheme.walk in
    let shortest = Apsp.distance apsp src dst in
    let stretch =
      if not r.Scheme.delivered then infinity
      else if src = dst || shortest = 0.0 then 1.0
      else cost /. shortest
    in
    match json with
    | Some path ->
        let summary =
          Cr_util.Jsonl.obj
            [
              ("event", Cr_util.Jsonl.str "summary");
              ("scheme", Cr_util.Jsonl.str sch.Scheme.name);
              ("src", Cr_util.Jsonl.int src);
              ("dst", Cr_util.Jsonl.int dst);
              ("delivered", Cr_util.Jsonl.bool r.Scheme.delivered);
              ("phases_used", Cr_util.Jsonl.int r.Scheme.phases_used);
              ("cost", Cr_util.Jsonl.float cost);
              ("hops", Cr_util.Jsonl.int hops);
              ("shortest", Cr_util.Jsonl.float shortest);
              ("stretch", Cr_util.Jsonl.float stretch);
            ]
        in
        let lines = List.map Trace.event_to_json events @ [ summary ] in
        if path = "-" then List.iter print_endline lines
        else begin
          Cr_util.Jsonl.write_lines lines path;
          Printf.printf "json written to %s\n" path
        end
    | None ->
        Printf.printf "%s: %d -> %d (identifier %d)\n" sch.Scheme.name src dst
          (Graph.name_of g dst);
        Printf.printf "delivered %b, phases %d, cost %.4g, hops %d, shortest %.4g, stretch %.3f\n"
          r.Scheme.delivered r.Scheme.phases_used cost hops shortest stretch;
        let table =
          T.create
            ~title:(Printf.sprintf "trace of %s, %d -> %d" sch.Scheme.name src dst)
            [ ("#", T.Right); ("phase", T.Right); ("event", T.Left); ("annotation", T.Left) ]
        in
        List.iteri
          (fun i ev ->
            T.add_row table
              [
                string_of_int (i + 1);
                (match Trace.phase_of ev with Some p -> string_of_int p | None -> "-");
                Trace.label ev;
                Trace.event_to_string ev;
              ])
          events;
        T.print table;
        if hops <= 64 then
          Printf.printf "walk: %s\n" (String.concat " -> " (List.map string_of_int r.Scheme.walk))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Route one message with the trace sink attached and print the event narration.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ scheme_arg $ src
      $ dst $ json_arg)

(* ---------- build ---------- *)

let build_cmd =
  let module Profile = Cr_obs.Profile in
  let profile_arg =
    Arg.(value & flag & info [ "profile" ] ~doc:"Report per-stage build profiling (seconds and bits).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the build summary (and stage profile) as one strict-JSON line to FILE (\"-\" for stdout).")
  in
  let run seed k workload graph_file aspect scheme profile json =
    let g = load_graph ~seed ~graph_file ~workload ~aspect in
    let p = Profile.create () in
    let apsp = Profile.time p "apsp" (fun () -> Apsp.compute_parallel g) in
    (* agm06 charges its own stages; other schemes get one "scheme" stage
       (nesting both would double-count the total) *)
    let sch =
      match scheme with
      | "agm06" -> Agm06.scheme (Agm06.build ~params:(Params.scaled ~k ~seed ()) ~profile:p apsp)
      | "agm06-paper" ->
          Agm06.scheme (Agm06.build ~params:(Params.paper ~k ~seed ()) ~profile:p apsp)
      | name -> Profile.time p "scheme" (fun () -> build_scheme apsp ~k ~seed name)
    in
    let storage = sch.Scheme.storage in
    Printf.printf "%s over %s: n=%d m=%d\n" sch.Scheme.name
      (match graph_file with Some path -> path | None -> Experiment.workload_name workload)
      (Graph.n g) (Graph.m g);
    Printf.printf "table bits: max %s, mean %s, total %s; header %d bits\n"
      (T.fmt_bits (Storage.max_node_bits storage))
      (T.fmt_bits (int_of_float (Storage.mean_node_bits storage)))
      (T.fmt_bits (Storage.total_bits storage))
      sch.Scheme.header_bits;
    if profile then print_string (Profile.report ~title:"build stages" p);
    match json with
    | None -> ()
    | Some path ->
        let line =
          Cr_util.Jsonl.obj
            [
              ("scheme", Cr_util.Jsonl.str sch.Scheme.name);
              ("n", Cr_util.Jsonl.int (Graph.n g));
              ("m", Cr_util.Jsonl.int (Graph.m g));
              ("bits_max", Cr_util.Jsonl.int (Storage.max_node_bits storage));
              ("bits_mean", Cr_util.Jsonl.float (Storage.mean_node_bits storage));
              ("bits_total", Cr_util.Jsonl.int (Storage.total_bits storage));
              ("header_bits", Cr_util.Jsonl.int sch.Scheme.header_bits);
              ("profile", Profile.to_json p);
            ]
        in
        if path = "-" then print_endline line
        else begin
          Cr_util.Jsonl.write_lines [ line ] path;
          Printf.printf "json written to %s\n" path
        end
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Construct a scheme and report its table sizes, with optional per-stage profiling.")
    Term.(
      const run $ seed_arg $ k_arg $ workload_arg $ graph_file_arg $ aspect_arg $ scheme_arg
      $ profile_arg $ json_arg)

let () =
  let doc = "compact-routing toolbox: the AGM'06 scale-free name-independent scheme and its comparators" in
  let main = Cmd.group (Cmd.info "crt" ~doc) [ generate_cmd; info_cmd; decompose_cmd; covers_cmd; route_cmd; eval_cmd; tables_cmd; resilience_cmd; serve_cmd; oracle_cmd; chaos_cmd; daemon_cmd; trace_cmd; build_cmd ] in
  (* CLI misuse (unknown subcommand, malformed flag, bad roster name) is
     a one-line usage error on stderr and exit 2 — never a backtrace.
     [~catch:false] so real bugs still crash loudly in CI. *)
  match Cmd.eval_value ~catch:false main with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2 (* cmdliner already printed the usage line *)
  | Error `Exn -> exit 125
  | exception Invalid_argument msg ->
      Printf.eprintf "crt: %s\n" msg;
      exit 2
